package matrix

import (
	"fmt"
	"sort"
)

// SparseSPD is a symmetric positive-definite system with a fixed sparsity
// pattern, factorized as P·A·Pᵀ = L·D·Lᵀ with a reverse Cuthill-McKee
// fill-reducing permutation P. The pattern work happens once at
// construction: the permuted upper-triangle CSC layout, the elimination
// tree, and the per-column factor counts (the symbolic factorization) are
// all precomputed, so Factorize and Solve touch only preallocated arrays —
// zero allocations per call, which is what lets the hydraulic Newton loop
// refactorize every iteration without GC traffic.
//
// Assembly targets slots: resolve DiagSlot/PairSlot once, then Add
// coefficients per iteration after Reset. A SparseSPD is not safe for
// concurrent use.
type SparseSPD struct {
	n     int
	perm  []int // perm[k] = original index at permuted position k
	iperm []int // iperm[original] = permuted position

	// Upper triangle of the permuted matrix in compressed-sparse-column
	// form. Rows within a column are ascending, so the diagonal entry is
	// always the last of its column.
	colPtr []int
	rowIdx []int
	values []float64

	// Symbolic factorization: elimination tree and factor column layout.
	parent []int
	lp     []int // factor column pointers, len n+1
	li     []int // factor row indices (strictly below diagonal)
	lx     []float64
	d      []float64 // D of LDLᵀ

	// Numeric workspaces (Davis' up-looking LDL algorithm).
	y       []float64
	pattern []int
	flag    []int
	lnz     []int
	w       []float64 // solve workspace, keeps b/x aliasing safe
}

// NewSparseSPD builds the system for an n×n matrix whose off-diagonal
// pattern is the given set of (i, j) pairs (order and duplicates are
// irrelevant; every diagonal entry is always present). The fill-reducing
// ordering and symbolic factorization are computed here, once.
func NewSparseSPD(n int, pairs [][2]int) (*SparseSPD, error) {
	if n <= 0 {
		return nil, fmt.Errorf("matrix: SparseSPD of invalid dimension %d", n)
	}
	adj := make([][]int, n)
	for _, pr := range pairs {
		i, j := pr[0], pr[1]
		if i < 0 || i >= n || j < 0 || j >= n {
			return nil, fmt.Errorf("matrix: SparseSPD pair (%d,%d) out of range [0,%d)", i, j, n)
		}
		if i == j {
			continue // diagonal is implicit
		}
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}
	for i := range adj {
		sort.Ints(adj[i])
	}

	s := &SparseSPD{n: n}
	s.perm = ReverseCuthillMcKee(adj)
	s.iperm = InversePermutation(s.perm)

	// Permuted upper-triangle CSC pattern: relabel every edge through
	// iperm so the numeric code never touches the permutation again.
	colRows := make([][]int, n)
	for i, nbrs := range adj {
		pi := s.iperm[i]
		prev := -1
		for _, j := range nbrs {
			if j == prev {
				continue // collapse parallel edges into one slot
			}
			prev = j
			if j < i {
				continue // each undirected edge once
			}
			pj := s.iperm[j]
			r, c := pi, pj
			if r > c {
				r, c = c, r
			}
			colRows[c] = append(colRows[c], r)
		}
	}
	s.colPtr = make([]int, n+1)
	nnz := n // diagonals
	for c := 0; c < n; c++ {
		sort.Ints(colRows[c])
		nnz += len(colRows[c])
	}
	s.rowIdx = make([]int, 0, nnz)
	for c := 0; c < n; c++ {
		s.colPtr[c] = len(s.rowIdx)
		s.rowIdx = append(s.rowIdx, colRows[c]...)
		s.rowIdx = append(s.rowIdx, c) // diagonal, largest row in the column
	}
	s.colPtr[n] = len(s.rowIdx)
	s.values = make([]float64, len(s.rowIdx))

	s.symbolic()
	s.y = make([]float64, n)
	s.pattern = make([]int, n)
	s.w = make([]float64, n)
	return s, nil
}

// symbolic computes the elimination tree and the exact nonzero count of
// every factor column from the permuted upper-triangle pattern, then lays
// out the factor arrays. One pass of path compression over the tree — no
// numeric work.
func (s *SparseSPD) symbolic() {
	n := s.n
	s.parent = make([]int, n)
	s.flag = make([]int, n)
	s.lnz = make([]int, n)
	s.lp = make([]int, n+1)
	for k := 0; k < n; k++ {
		s.parent[k] = -1
		s.flag[k] = k
		for p := s.colPtr[k]; p < s.colPtr[k+1]; p++ {
			i := s.rowIdx[p]
			for ; s.flag[i] != k; i = s.parent[i] {
				if s.parent[i] == -1 {
					s.parent[i] = k
				}
				s.lnz[i]++
				s.flag[i] = k
			}
		}
	}
	for k := 0; k < n; k++ {
		s.lp[k+1] = s.lp[k] + s.lnz[k]
	}
	s.li = make([]int, s.lp[n])
	s.lx = make([]float64, s.lp[n])
	s.d = make([]float64, n)
}

// N returns the system dimension.
func (s *SparseSPD) N() int { return s.n }

// NNZ returns the stored nonzero count of the matrix pattern (upper
// triangle plus diagonal).
func (s *SparseSPD) NNZ() int { return len(s.rowIdx) }

// FactorNNZ returns the nonzero count of the factor L (strict lower
// triangle plus the n diagonal entries of D). FactorNNZ − NNZ is the
// fill-in introduced by elimination.
func (s *SparseSPD) FactorNNZ() int { return s.lp[s.n] + s.n }

// Reset zeroes the assembled coefficients, retaining the pattern.
func (s *SparseSPD) Reset() {
	for i := range s.values {
		s.values[i] = 0
	}
}

// DiagSlot returns the assembly slot of diagonal entry (i, i).
func (s *SparseSPD) DiagSlot(i int) int {
	// The diagonal is the last entry of its permuted column.
	return s.colPtr[s.iperm[i]+1] - 1
}

// PairSlot returns the assembly slot shared by the symmetric pair
// (i, j)/(j, i), or -1 when the pair is not part of the pattern.
func (s *SparseSPD) PairSlot(i, j int) int {
	if i < 0 || j < 0 || i >= s.n || j >= s.n || i == j {
		return -1
	}
	r, c := s.iperm[i], s.iperm[j]
	if r > c {
		r, c = c, r
	}
	lo, hi := s.colPtr[c], s.colPtr[c+1]
	k := lo + sort.SearchInts(s.rowIdx[lo:hi], r)
	if k < hi && s.rowIdx[k] == r {
		return k
	}
	return -1
}

// Add accumulates v into a slot previously resolved with DiagSlot or
// PairSlot.
func (s *SparseSPD) Add(slot int, v float64) { s.values[slot] += v }

// Factorize recomputes the numeric LDLᵀ factorization from the assembled
// coefficients. Up-looking, column by column: column k of the factor is a
// sparse triangular solve against the columns the elimination tree says it
// depends on. No allocation. Returns ErrNotPositiveDefinite when a pivot
// is non-positive or non-finite.
func (s *SparseSPD) Factorize() error {
	n := s.n
	for k := 0; k < n; k++ {
		// Scatter column k of A and collect its factor pattern as etree
		// paths in topological order.
		top := n
		s.flag[k] = k
		s.lnz[k] = 0
		for p := s.colPtr[k]; p < s.colPtr[k+1]; p++ {
			i := s.rowIdx[p]
			s.y[i] += s.values[p]
			plen := 0
			for ; s.flag[i] != k; i = s.parent[i] {
				s.pattern[plen] = i
				plen++
				s.flag[i] = k
			}
			for plen > 0 {
				plen--
				top--
				s.pattern[top] = s.pattern[plen]
			}
		}
		dk := s.y[k]
		s.y[k] = 0
		for ; top < n; top++ {
			i := s.pattern[top]
			yi := s.y[i]
			s.y[i] = 0
			p2 := s.lp[i] + s.lnz[i]
			for p := s.lp[i]; p < p2; p++ {
				s.y[s.li[p]] -= s.lx[p] * yi
			}
			lki := yi / s.d[i]
			dk -= lki * yi
			s.li[p2] = k
			s.lx[p2] = lki
			s.lnz[i]++
		}
		if !(dk > 0) { // catches dk <= 0 and NaN
			return ErrNotPositiveDefinite
		}
		s.d[k] = dk
	}
	return nil
}

// Solve solves A·x = b using the current factorization. dst and b must
// have length n; dst may alias b. No allocation.
func (s *SparseSPD) Solve(b, dst []float64) error {
	n := s.n
	if len(b) != n || len(dst) != n {
		return fmt.Errorf("matrix: SparseSPD solve dimension mismatch: %d/%d vs %d", len(dst), len(b), n)
	}
	w := s.w
	for k := 0; k < n; k++ {
		w[k] = b[s.perm[k]]
	}
	// L·y = P·b (unit lower triangular).
	for k := 0; k < n; k++ {
		wk := w[k]
		for p := s.lp[k]; p < s.lp[k+1]; p++ {
			w[s.li[p]] -= s.lx[p] * wk
		}
	}
	// D·z = y.
	for k := 0; k < n; k++ {
		w[k] /= s.d[k]
	}
	// Lᵀ·(P·x) = z.
	for k := n - 1; k >= 0; k-- {
		wk := w[k]
		for p := s.lp[k]; p < s.lp[k+1]; p++ {
			wk -= s.lx[p] * w[s.li[p]]
		}
		w[k] = wk
	}
	for k := 0; k < n; k++ {
		dst[s.perm[k]] = w[k]
	}
	return nil
}
