package matrix

import "math"

// Dot returns the inner product of a and b. The slices must have equal
// length; this is the caller's responsibility (hot path, no check).
func Dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AxpY computes y += alpha*x in place.
func AxpY(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute value in x (0 for empty input).
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of elements of x.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Variance returns the population variance of x (0 for len < 2).
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}
