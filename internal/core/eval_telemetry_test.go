package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// TestTelemetryDoesNotChangeScores pins the telemetry layer's determinism
// contract: enabling instrumentation must not move a single bit of the
// EvaluateParallel result at a fixed seed. The system (and its solvers)
// is rebuilt under each telemetry state, since handles bind at
// construction — the strictest version of the guarantee.
func TestTelemetryDoesNotChangeScores(t *testing.T) {
	telemetry.Disable()
	leakCfg := leak.GeneratorConfig{MinEvents: 1, MaxEvents: 3}
	opt := ObserveOptions{
		Sources:      Sources{Weather: true, Human: true},
		ElapsedSlots: 2,
		GammaM:       60,
	}
	run := func(workers int) EvalResult {
		t.Helper()
		sys := smallTrainedSystem(t)
		res, err := sys.EvaluateParallel(14, leakCfg, opt, workers, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("EvaluateParallel: %v", err)
		}
		return res
	}

	plain := run(3)

	reg := telemetry.Enable()
	defer telemetry.Disable()
	instrumented := run(3)

	if !reflect.DeepEqual(plain, instrumented) {
		t.Fatalf("telemetry changed the result: off=%+v on=%+v", plain, instrumented)
	}

	// And the instrumented run must actually have recorded something.
	if got := reg.Counter("core_eval_scenarios_total").Value(); got != 14 {
		t.Fatalf("scenarios counter = %d, want 14", got)
	}
	if reg.Counter("hydraulic_solves_total").Value() == 0 {
		t.Fatal("no hydraulic solves recorded during instrumented run")
	}
	if reg.Counter("dataset_samples_generated_total").Value() == 0 {
		t.Fatal("no dataset samples recorded during instrumented run")
	}
	if reg.Counter("dataset_session_reuse_total").Value() == 0 {
		t.Fatal("no session reuse recorded — per-worker solver reuse broken?")
	}
	if reg.Histogram("core_observe_seconds", nil).Count() != 14 {
		t.Fatalf("observe latency histogram count = %d, want 14",
			reg.Histogram("core_observe_seconds", nil).Count())
	}
	if reg.SpanStats("core_evaluate_parallel").Count() != 1 {
		t.Fatalf("eval span count = %d, want 1", reg.SpanStats("core_evaluate_parallel").Count())
	}
	if reg.Gauge("core_eval_worker_busy_seconds_total").Value() <= 0 {
		t.Fatal("worker busy time not recorded")
	}
}

// benchmarkEvaluateParallel measures the full Phase-II engine under the
// current global telemetry state; the system is built inside so solver and
// factory handles bind under that state.
func benchmarkEvaluateParallel(b *testing.B) {
	sys := smallTrainedSystem(b)
	leakCfg := leak.GeneratorConfig{MinEvents: 1, MaxEvents: 3}
	opt := ObserveOptions{Sources: Sources{Weather: true, Human: true}, ElapsedSlots: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.EvaluateParallel(8, leakCfg, opt, 0, rand.New(rand.NewSource(7))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateParallelTelemetryOff is the disabled-path regression
// guard: compare against BenchmarkEvaluateParallelTelemetryOn — the gap
// must sit within run-to-run noise (numbers in EXPERIMENTS.md).
func BenchmarkEvaluateParallelTelemetryOff(b *testing.B) {
	telemetry.Disable()
	benchmarkEvaluateParallel(b)
}

func BenchmarkEvaluateParallelTelemetryOn(b *testing.B) {
	telemetry.Enable()
	defer telemetry.Disable()
	benchmarkEvaluateParallel(b)
}
