package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/aquascale/aquascale/internal/mlearn"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// CompiledProfile is the flattened, allocation-free inference form of a
// Profile: every per-node classifier compiled via mlearn.Compile, all
// evaluated against one shared feature vector, with the junction→node
// scatter done in place. Predictions are bit-identical to
// Profile.PredictProba.
type CompiledProfile struct {
	model        *mlearn.CompiledMultiOutput
	junctions    []int // label column → node index, strictly increasing
	nonJunctions []int // fixed-grade node indices (probability 0)
	nodeCount    int
}

// Compile flattens the profile's classifier bank.
func (p *Profile) Compile() (*CompiledProfile, error) {
	cm, err := p.model.Compile()
	if err != nil {
		return nil, fmt.Errorf("core: compile profile: %w", err)
	}
	// The in-place scatter below needs junctions[col] ≥ col, which holds
	// exactly when the column→node map is strictly increasing (as
	// TrainProfile builds it from JunctionIndices). Reject anything else
	// rather than corrupt the buffer silently.
	for col, nodeIdx := range p.junctions {
		if nodeIdx < 0 || nodeIdx >= p.nodeCount || (col > 0 && nodeIdx <= p.junctions[col-1]) {
			return nil, fmt.Errorf("core: compile profile: junction columns are not strictly increasing node indices")
		}
	}
	isJunction := make([]bool, p.nodeCount)
	for _, v := range p.junctions {
		isJunction[v] = true
	}
	var nonJ []int
	for v, ok := range isJunction {
		if !ok {
			nonJ = append(nonJ, v)
		}
	}
	return &CompiledProfile{
		model:        cm,
		junctions:    append([]int(nil), p.junctions...),
		nonJunctions: nonJ,
		nodeCount:    p.nodeCount,
	}, nil
}

// NodeCount returns the network's |V| — the required buffer length for
// PredictProbaInto.
func (cp *CompiledProfile) NodeCount() int { return cp.nodeCount }

// PredictProbaInto writes per-node leak probabilities into out
// (len == NodeCount()). The per-junction columns are evaluated into the
// buffer's prefix, scattered in place to their node indices in
// descending column order (safe because junctions[col] ≥ col), then the
// fixed-grade positions are zeroed. No heap allocations when features
// are finite.
func (cp *CompiledProfile) PredictProbaInto(features, out []float64) error {
	if len(out) != cp.nodeCount {
		return fmt.Errorf("core: probability buffer has %d slots, want %d", len(out), cp.nodeCount)
	}
	if err := cp.model.PredictProbaInto(features, out[:len(cp.junctions)]); err != nil {
		return err
	}
	for col := len(cp.junctions) - 1; col >= 0; col-- {
		out[cp.junctions[col]] = out[col]
	}
	for _, v := range cp.nonJunctions {
		out[v] = 0
	}
	return nil
}

// memoKey is the baseline memo key: the paper's quiescent profile is a
// function of the network and the point in the daily demand cycle.
type memoKey struct {
	fingerprint uint64
	hour        int
}

// baselineMemo caches quiescent (leak-free, noise-free) sensor readings
// by (network fingerprint, pattern hour). Demand patterns repeat daily,
// so hour h and h+24 share one entry — unlike the factory's raw-duration
// solver cache, which re-solves for every distinct clock time.
type baselineMemo struct {
	fingerprint uint64
	mu          sync.RWMutex
	byKey       map[memoKey][]float64
}

func newBaselineMemo(fingerprint uint64) *baselineMemo {
	return &baselineMemo{fingerprint: fingerprint, byKey: make(map[memoKey][]float64)}
}

func (m *baselineMemo) get(hour int) ([]float64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	vals, ok := m.byKey[memoKey{m.fingerprint, hour}]
	return vals, ok
}

func (m *baselineMemo) put(hour int, vals []float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byKey[memoKey{m.fingerprint, hour}] = vals
}

// compiledSnapshot binds a compiled profile to the exact *Profile it was
// built from, plus the baseline memo. Localize uses the snapshot only
// while its source profile is still the installed one, so a profile
// hot-swap implicitly invalidates both the flattened models and the memo
// (and TrainOn/SetProfile additionally drop the snapshot outright).
type compiledSnapshot struct {
	profile *Profile
	model   *CompiledProfile
	memo    *baselineMemo
}

// Compile pre-builds the serving fast path for the installed profile:
// every per-node classifier is flattened (mlearn.Compile) and the
// quiescent baseline for the factory's base hour is memoized, so observe
// requests neither chase tree pointers nor re-run the hydraulic solve.
// The snapshot is bound to the current profile; TrainOn and SetProfile
// drop it, and callers hot-swapping profiles must Compile again.
func (s *System) Compile() error {
	p := s.profile.Load()
	if p == nil {
		return fmt.Errorf("core: compile: system not trained")
	}
	cp, err := p.Compile()
	if err != nil {
		return err
	}
	memo := newBaselineMemo(s.net.Fingerprint())
	base := s.factory.BaseTime()
	vals, err := s.factory.BaselineReadings(base)
	if err != nil {
		return fmt.Errorf("core: compile: baseline: %w", err)
	}
	memo.put(patternHour(base), vals)
	s.compiled.Store(&compiledSnapshot{profile: p, model: cp, memo: memo})
	return nil
}

// Compiled reports whether a compiled snapshot matching the installed
// profile is active — i.e. whether Localize takes the fast path.
func (s *System) Compiled() bool {
	snap := s.compiled.Load()
	return snap != nil && snap.profile == s.profile.Load()
}

// QuiescentBaseline returns the leak-free noise-free sensor readings for
// the given pattern hour (hours outside [0,24) wrap into the daily
// cycle). With a compiled snapshot installed the result is memoized by
// (network fingerprint, hour); otherwise it falls back to the factory's
// solver cache. The returned slice is shared — treat it as read-only.
func (s *System) QuiescentBaseline(hour int) ([]float64, error) {
	return s.QuiescentBaselineContext(context.Background(), hour)
}

// QuiescentBaselineContext is QuiescentBaseline with per-request trace
// propagation: a trace carried by ctx records whether the lookup hit the
// (fingerprint, hour) memo or fell through to a hydraulic solve — the
// difference between a ~100ns map read and a multi-millisecond Newton
// solve, which is exactly the latency cliff a flight-recorder entry
// needs to explain.
func (s *System) QuiescentBaselineContext(ctx context.Context, hour int) ([]float64, error) {
	tr := telemetry.TraceFrom(ctx)
	h := ((hour % 24) + 24) % 24
	t := time.Duration(h) * time.Hour
	snap := s.compiled.Load()
	if snap == nil {
		tr.EventValue(telemetry.StageBaselineMemoMiss, float64(h))
		return s.factory.BaselineReadings(t)
	}
	if vals, ok := snap.memo.get(h); ok {
		tr.EventValue(telemetry.StageBaselineMemoHit, float64(h))
		return vals, nil
	}
	tr.EventValue(telemetry.StageBaselineMemoMiss, float64(h))
	vals, err := s.factory.BaselineReadings(t)
	if err != nil {
		return nil, err
	}
	snap.memo.put(h, vals)
	return vals, nil
}

func patternHour(t time.Duration) int {
	h := int(t/time.Hour) % 24
	if h < 0 {
		h += 24
	}
	return h
}
