package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// smallTrainedSystem builds a cheap trained system (linear profile, few
// samples) for determinism tests that must run even in -short mode, and
// for the telemetry-overhead benchmarks.
func smallTrainedSystem(t testing.TB) *System {
	t.Helper()
	net := network.BuildEPANet()
	base, err := hydraulic.RunEPS(net, hydraulic.EPSOptions{Duration: 4 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		t.Fatalf("baseline EPS: %v", err)
	}
	placer, err := sensor.NewPlacer(net, base)
	if err != nil {
		t.Fatalf("NewPlacer: %v", err)
	}
	sensors, err := placer.KMedoids(12, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("KMedoids: %v", err)
	}
	factory, err := dataset.NewFactory(net, sensors, dataset.Config{
		Noise: sensor.DefaultNoise,
		Leaks: leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2},
	})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	sys := NewSystem(factory, net, SystemConfig{})
	if err := sys.Train(60, ProfileConfig{Technique: "linear", Seed: 5}, rand.New(rand.NewSource(3))); err != nil {
		t.Fatalf("Train: %v", err)
	}
	return sys
}

// TestEvaluateParallelDeterministic pins the tentpole guarantee: for a
// fixed seed, EvaluateParallel returns bit-identical results whether it
// runs serially or fanned out over any worker count.
func TestEvaluateParallelDeterministic(t *testing.T) {
	sys := smallTrainedSystem(t)
	leakCfg := leak.GeneratorConfig{MinEvents: 1, MaxEvents: 3}
	opt := ObserveOptions{
		Sources:      Sources{Weather: true, Human: true},
		ElapsedSlots: 2,
		GammaM:       60,
	}
	run := func(workers int) EvalResult {
		res, err := sys.EvaluateParallel(18, leakCfg, opt, workers, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("EvaluateParallel(workers=%d): %v", workers, err)
		}
		return res
	}
	serial := run(1)
	if serial.Scenarios != 18 {
		t.Fatalf("scenarios = %d, want 18", serial.Scenarios)
	}
	for _, workers := range []int{2, 5, 8, 0} {
		if par := run(workers); !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d diverged: serial=%+v parallel=%+v", workers, serial, par)
		}
	}
}

// TestEvaluateGOMAXPROCSInvariant checks that the same-seed result does not
// depend on how many OS threads the runtime schedules goroutines onto.
func TestEvaluateGOMAXPROCSInvariant(t *testing.T) {
	sys := smallTrainedSystem(t)
	leakCfg := leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2}
	opt := ObserveOptions{Sources: Sources{Weather: true, Human: true}, ElapsedSlots: 2}
	run := func() EvalResult {
		res, err := sys.EvaluateParallel(12, leakCfg, opt, 4, rand.New(rand.NewSource(17)))
		if err != nil {
			t.Fatalf("EvaluateParallel: %v", err)
		}
		return res
	}
	wide := run()
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	if narrow := run(); !reflect.DeepEqual(wide, narrow) {
		t.Fatalf("GOMAXPROCS changed the result: %+v vs %+v", wide, narrow)
	}
}

// TestObserveMatchesObserveWith pins the slow path to the engine path: for
// the same scenario and rng state, Observe and a reused observer must
// produce the same observation.
func TestObserveMatchesObserveWith(t *testing.T) {
	net := network.BuildEPANet()
	sys := NewSystem(testFactory(t, net), net, SystemConfig{})
	sc, err := sys.GenerateColdScenario(leak.GeneratorConfig{MinEvents: 2, MaxEvents: 2}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("GenerateColdScenario: %v", err)
	}
	opt := ObserveOptions{Sources: Sources{Weather: true, Human: true}, ElapsedSlots: 6, GammaM: 80}

	slow, err := sys.Observe(sc, opt, rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	o, err := sys.newObserver()
	if err != nil {
		t.Fatalf("newObserver: %v", err)
	}
	// Drive the same observer twice to prove reuse does not drift.
	for trial := 0; trial < 2; trial++ {
		fast, _, err := sys.observeWith(o, sc, opt, rand.New(rand.NewSource(33)))
		if err != nil {
			t.Fatalf("observeWith (trial %d): %v", trial, err)
		}
		if !reflect.DeepEqual(slow, fast) {
			t.Fatalf("observer reuse diverged from Observe (trial %d)", trial)
		}
	}
}

func TestEvaluateParallelValidation(t *testing.T) {
	net := network.BuildEPANet()
	sys := NewSystem(testFactory(t, net), net, SystemConfig{})
	// Untrained system must fail before doing any work.
	if _, err := sys.EvaluateParallel(4, leak.GeneratorConfig{}, ObserveOptions{}, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("untrained EvaluateParallel should error")
	}
	sys = smallTrainedSystem(t)
	if _, err := sys.EvaluateParallel(0, leak.GeneratorConfig{}, ObserveOptions{}, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("non-positive count should error")
	}
	if _, err := sys.EvaluateParallel(4, leak.GeneratorConfig{}, ObserveOptions{}, 2, nil); err == nil {
		t.Fatal("nil rng should error")
	}
}
