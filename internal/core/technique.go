package core

import (
	"fmt"
	"strings"

	"github.com/aquascale/aquascale/internal/mlearn"
)

// Technique identifies a Phase-I learning technique from the mlearn
// plug-and-play registry. The zero value selects the default
// (TechniqueHybridRSL, the paper's best performer).
//
// Technique is a string kind, so JSON encodes it as a plain string; it
// also implements encoding.TextMarshaler/TextUnmarshaler, which makes
// decoding validate the name (flag.TextVar gives CLI flags the same
// validation for free).
type Technique string

// The built-in techniques, matching the registered classifier names
// (TestTechniquesMatchRegistry pins the two lists together).
const (
	TechniqueLinear    Technique = "linear"
	TechniqueLogistic  Technique = "logistic"
	TechniqueGB        Technique = "gb"
	TechniqueRF        Technique = "rf"
	TechniqueSVM       Technique = "svm"
	TechniqueHybridRSL Technique = "hybrid-rsl"
)

// Techniques lists every registered technique in sorted name order —
// the same set mlearn.Names reports, including any classifier registered
// beyond the built-in constants.
func Techniques() []Technique {
	names := mlearn.Names()
	out := make([]Technique, len(names))
	for i, n := range names {
		out[i] = Technique(n)
	}
	return out
}

// String returns the registry name.
func (t Technique) String() string { return string(t) }

// ParseTechnique resolves a classifier name against the mlearn registry.
// The empty string selects TechniqueHybridRSL (the package default); an
// unknown name errors, listing the valid names.
func ParseTechnique(s string) (Technique, error) {
	if s == "" {
		return TechniqueHybridRSL, nil
	}
	if _, err := mlearn.NewByName(s, 0); err != nil {
		names := mlearn.Names()
		return "", fmt.Errorf("core: unknown technique %q (valid: %s)", s, strings.Join(names, ", "))
	}
	return Technique(s), nil
}

// MarshalText implements encoding.TextMarshaler.
func (t Technique) MarshalText() ([]byte, error) { return []byte(t), nil }

// UnmarshalText implements encoding.TextUnmarshaler, validating the name
// against the registry — json.Unmarshal and flag.TextVar both reject
// unknown techniques with the ParseTechnique error.
func (t *Technique) UnmarshalText(text []byte) error {
	parsed, err := ParseTechnique(string(text))
	if err != nil {
		return err
	}
	*t = parsed
	return nil
}
