package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/fusion"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/social"
	"github.com/aquascale/aquascale/internal/telemetry"
	"github.com/aquascale/aquascale/internal/weather"
)

// Sources toggles the information sources used during Phase-II inference —
// the paper's evaluation strategies (IoT only, +Temp, +Human, all).
type Sources struct {
	Weather bool
	Human   bool
}

// Observation is one live Phase-II input.
type Observation struct {
	// Features are the IoT reading deltas (aligned with the sensor set).
	Features []float64

	// Frozen marks nodes detected frozen (nil when weather is unused).
	Frozen []bool

	// Cliques is the human-input evidence (nil when unused).
	Cliques []social.Clique
}

// System is a trained AquaSCALE instance for one network and sensor set.
//
// Every field but the profile is immutable after NewSystem, and the
// profile is held behind an atomic pointer, so one System is safe to
// share across goroutines: concurrent Localize calls may run against a
// concurrent SetProfile hot-swap and always see a complete profile.
type System struct {
	net      *network.Network
	factory  *dataset.Factory
	profile  atomic.Pointer[Profile]
	compiled atomic.Pointer[compiledSnapshot]
	engine   *fusion.Engine
	freeze   weather.FreezeModel
	social   social.Config
}

// SystemConfig wires a System.
type SystemConfig struct {
	// Profile selects the Phase-I technique.
	Profile ProfileConfig

	// Fusion configures Phase II.
	Fusion fusion.Config

	// Freeze is the freeze model (zero means the paper's 0.8/0.9).
	Freeze weather.FreezeModel

	// Social configures tweet-stream simulation.
	Social social.Config
}

// NewSystem builds an untrained system around a data factory.
func NewSystem(factory *dataset.Factory, net *network.Network, cfg SystemConfig) *System {
	freeze := cfg.Freeze
	if freeze == (weather.FreezeModel{}) {
		freeze = weather.DefaultFreezeModel
	}
	fcfg := cfg.Fusion
	fcfg.Freeze = freeze
	return &System{
		net:     net,
		factory: factory,
		engine:  fusion.NewEngine(fcfg),
		freeze:  freeze,
		social:  cfg.Social,
	}
}

// Network returns the system's network.
func (s *System) Network() *network.Network { return s.net }

// Factory returns the system's data factory.
func (s *System) Factory() *dataset.Factory { return s.factory }

// Social returns the system's social-sensing configuration (the same
// parameters Observe uses to synthesize and clique-ify reports), so
// online ingestion can build cliques identically to the offline path.
func (s *System) Social() social.Config { return s.social }

// Train runs Phase I: generate a training dataset and fit the profile.
func (s *System) Train(samples int, cfg ProfileConfig, rng *rand.Rand) error {
	return s.TrainContext(context.Background(), samples, cfg, rng)
}

// TrainContext is Train with cancellation: dataset generation observes
// ctx between scenarios (see dataset.Factory.GenerateContext), and a
// cancelled context aborts before fitting and returns ctx.Err() without
// touching any installed profile. For a given rng seed an uncancelled
// TrainContext is bit-identical to Train.
func (s *System) TrainContext(ctx context.Context, samples int, cfg ProfileConfig, rng *rand.Rand) error {
	ds, err := s.factory.GenerateContext(ctx, samples, rng)
	if err != nil {
		return err
	}
	return s.TrainOn(ds, cfg)
}

// TrainOn fits the profile on a pre-built dataset. Any compiled snapshot
// is dropped — it belongs to the previous profile.
func (s *System) TrainOn(ds *dataset.Dataset, cfg ProfileConfig) error {
	p, err := TrainProfile(ds, len(s.net.Nodes), cfg)
	if err != nil {
		return err
	}
	s.profile.Store(p)
	s.compiled.Store(nil)
	return nil
}

// Profile returns the trained profile (nil before Train).
func (s *System) Profile() *Profile { return s.profile.Load() }

// Localize runs Phase II on one observation: profile prediction, then
// freeze-evidence fusion, then human-input event tuning. It returns the
// fused prediction and the nodes added by human input.
//
// Localize is safe for concurrent use — it reads the profile pointer
// once and touches no mutable System state — and is deterministic: the
// result depends only on the observation and the installed profile.
// After Compile it evaluates through the flattened snapshot, which is
// bit-identical to the pointer path.
func (s *System) Localize(obs Observation) (*fusion.Prediction, []int, error) {
	return s.LocalizeContext(context.Background(), obs)
}

// LocalizeContext is Localize with per-request trace propagation: when
// ctx carries a telemetry.Trace (see telemetry.ContextWithTrace) the
// evaluation path records its stage events — compiled vs. pointer eval
// and the junction scatter — onto it. An untraced context adds one nil
// check and nothing else; the result is identical either way.
func (s *System) LocalizeContext(ctx context.Context, obs Observation) (*fusion.Prediction, []int, error) {
	pred, added, _, err := s.LocalizeContextPath(ctx, obs)
	return pred, added, err
}

// LocalizeContextPath is LocalizeContext additionally reporting which
// inference path actually served the call: compiled is true iff the
// flattened snapshot scored this observation. Callers attributing
// metrics must use this instead of re-querying Compiled() afterwards —
// a concurrent SetProfile/Compile can drop or restore the snapshot
// between the evaluation and the query, misattributing the path.
func (s *System) LocalizeContextPath(ctx context.Context, obs Observation) (*fusion.Prediction, []int, bool, error) {
	pred := &fusion.Prediction{Proba: make([]float64, len(s.net.Nodes))}
	added, compiled, err := s.localizeInto(pred, obs, telemetry.TraceFrom(ctx))
	if err != nil {
		return nil, nil, false, err
	}
	return pred, added, compiled, nil
}

// LocalizeInto is Localize writing into a caller-owned prediction whose
// Proba buffer has one slot per network node. With a compiled snapshot
// installed (see Compile) the evaluation itself is allocation-free;
// without one it falls back to the pointer path and copies. Reusing pred
// across calls overwrites earlier results, so callers must not retain
// predictions they hand back in.
func (s *System) LocalizeInto(pred *fusion.Prediction, obs Observation) ([]int, error) {
	added, _, err := s.localizeInto(pred, obs, nil)
	return added, err
}

// LocalizeIntoContext is LocalizeInto with per-request trace propagation
// (see LocalizeContext). With no trace on ctx it preserves the compiled
// path's zero-allocation contract bit for bit — the tracing hooks cost
// one nil check each, the same contract the telemetry registry honors.
func (s *System) LocalizeIntoContext(ctx context.Context, pred *fusion.Prediction, obs Observation) ([]int, error) {
	added, _, err := s.localizeInto(pred, obs, telemetry.TraceFrom(ctx))
	return added, err
}

func (s *System) localizeInto(pred *fusion.Prediction, obs Observation, tr *telemetry.Trace) ([]int, bool, error) {
	p := s.profile.Load()
	if p == nil {
		return nil, false, fmt.Errorf("core: system not trained")
	}
	if len(pred.Proba) != len(s.net.Nodes) {
		return nil, false, fmt.Errorf("core: prediction buffer has %d slots, network has %d",
			len(pred.Proba), len(s.net.Nodes))
	}
	compiled := false
	if snap := s.compiled.Load(); snap != nil && snap.profile == p {
		compiled = true
		tr.Event(telemetry.StageEvalCompiled)
		if err := snap.model.PredictProbaInto(obs.Features, pred.Proba); err != nil {
			return nil, false, err
		}
		tr.EventValue(telemetry.StageJunctionScatter, float64(len(snap.model.junctions)))
	} else {
		tr.Event(telemetry.StageEvalPointer)
		proba, err := p.PredictProba(obs.Features)
		if err != nil {
			return nil, false, err
		}
		copy(pred.Proba, proba)
	}
	added, err := s.engine.Refine(pred, obs.Frozen, obs.Cliques)
	return added, compiled, err
}

// ColdScenario is a leak scenario caused by low temperature: leak
// locations are drawn from the frozen-pipe subset, and the frozen mask is
// what Phase II observes as weather evidence.
type ColdScenario struct {
	leak.Scenario

	// Frozen marks nodes whose service pipes froze (per the paper's
	// per-run draw against p(freeze)).
	Frozen []bool
}

// GenerateColdScenario draws one cold-weather multi-failure scenario: each
// junction freezes with p(freeze); the leak locations are sampled from the
// frozen set (freeze→burst causality), with the event count uniform in
// [cfg.MinEvents, cfg.MaxEvents] and log-uniform sizes.
func (s *System) GenerateColdScenario(cfg leak.GeneratorConfig, rng *rand.Rand) (ColdScenario, error) {
	if rng == nil {
		return ColdScenario{}, fmt.Errorf("core: nil rng")
	}
	if cfg.MinEvents <= 0 {
		cfg.MinEvents = 1
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 5
	}
	if cfg.MinSize <= 0 {
		cfg.MinSize = 3e-4
	}
	if cfg.MaxSize <= 0 {
		cfg.MaxSize = 3e-3
	}
	if cfg.MinEvents > cfg.MaxEvents || cfg.MinSize > cfg.MaxSize {
		return ColdScenario{}, fmt.Errorf("core: invalid cold-scenario bounds")
	}

	frozen := make([]bool, len(s.net.Nodes))
	var frozenJunctions []int
	for _, v := range s.net.JunctionIndices() {
		if rng.Float64() < s.freeze.PFreeze {
			frozen[v] = true
			frozenJunctions = append(frozenJunctions, v)
		}
	}
	if len(frozenJunctions) == 0 {
		// Degenerate draw: freeze at least one pipe so a cold failure can
		// occur.
		j := s.net.JunctionIndices()
		v := j[rng.Intn(len(j))]
		frozen[v] = true
		frozenJunctions = append(frozenJunctions, v)
	}

	count := cfg.MinEvents
	if span := cfg.MaxEvents - cfg.MinEvents; span > 0 {
		count += rng.Intn(span + 1)
	}
	if count > len(frozenJunctions) {
		count = len(frozenJunctions)
	}
	perm := rng.Perm(len(frozenJunctions))[:count]
	events := make([]leak.Event, count)
	logMin, logMax := math.Log(cfg.MinSize), math.Log(cfg.MaxSize)
	for i, pi := range perm {
		events[i] = leak.Event{
			Node:  frozenJunctions[pi],
			Size:  math.Exp(logMin + rng.Float64()*(logMax-logMin)),
			Start: cfg.Start,
		}
	}
	return ColdScenario{Scenario: leak.Scenario{Events: events}, Frozen: frozen}, nil
}

// ObserveOptions controls observation simulation for one scenario.
type ObserveOptions struct {
	// Sources selects which evidence channels populate the observation.
	Sources Sources

	// ElapsedSlots is n, the time slots since leak onset — governs how
	// many human reports have accumulated. Zero means 1.
	ElapsedSlots int

	// GammaM is the tweet coarseness γ in meters. Zero means 30 (the
	// paper's default for the fusion experiments).
	GammaM float64

	// FailFast makes EvaluateParallel abort on the first scenario whose
	// hydraulic solve fails after retries — the historical behavior. By
	// default such scenarios are skipped and recorded in
	// EvalResult.Skipped so long sweeps survive individual failures.
	FailFast bool
}

// Freeze-burst detection rates for the pressure-pattern analyzer (the
// paper's "if v is detected to be frozen": continued freezing raises
// pressure before the burst drops it, and that increase-then-decrease
// signature is what the detector fires on). A true freeze-burst is
// detected with probability p(freeze) = 0.8; a frozen-but-intact pipe
// false-fires with probability 1 − p(leak|freeze) = 0.1. The resulting
// likelihood ratio (8) matches the 9× posterior-odds multiplier Algorithm
// 2 applies, so the fused evidence is calibrated.
const (
	freezeDetectRate    = 0.8
	freezeFalseFireRate = 0.1
)

// Observe simulates the live data a deployed AquaSCALE would see for a
// scenario: noisy IoT reading deltas, the detected-frozen mask (if weather
// is enabled), and tweet-derived cliques (if human input is enabled).
//
// This is the documented slow path: every call constructs a fresh
// hydraulic solver session and tweet generator. Loops over many scenarios
// should go through Evaluate/EvaluateParallel, which amortize that setup
// across scenarios via per-worker observers. For a given rng state the
// observation is identical either way.
func (s *System) Observe(sc ColdScenario, opt ObserveOptions, rng *rand.Rand) (Observation, error) {
	o, err := s.newObserver()
	if err != nil {
		return Observation{}, err
	}
	obs, _, err := s.observeWith(o, sc, opt, rng)
	return obs, err
}

// SkippedScenario records one evaluation scenario dropped after solver
// retry exhaustion.
type SkippedScenario struct {
	// Index is the scenario's position in the evaluation order.
	Index int

	// Err is the terminal solve error (errors.Is-compatible with
	// hydraulic.ErrNotConverged).
	Err error

	// Retries is the retry budget consumed before the skip.
	Retries int

	// Trace replays the scenario's solver retry ladder (relaxation
	// factor, warm/cold restart, injection provenance per re-attempt) so
	// fault-tolerance reports name the exact retry sequence.
	Trace *telemetry.TraceSnapshot
}

// EvalResult summarizes an evaluation run.
type EvalResult struct {
	// MeanHamming is the paper's headline metric, averaged over the
	// scenarios that completed (Evaluated).
	MeanHamming float64

	// Scenarios is the number of test scenarios requested.
	Scenarios int

	// Evaluated is the number of scenarios that completed; it falls
	// short of Scenarios only when failures were skipped.
	Evaluated int

	// HumanAdded is the total number of nodes forced by human input.
	HumanAdded int

	// Retries is the total number of solver re-attempts consumed across
	// all scenarios (including skipped ones).
	Retries int

	// Skipped lists scenarios dropped after retry exhaustion, in
	// evaluation order. Empty on clean runs and always empty under
	// ObserveOptions.FailFast.
	Skipped []SkippedScenario
}
