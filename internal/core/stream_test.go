package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// profileBytes serializes a profile for bitwise comparison.
func profileBytes(t *testing.T, p *Profile) []byte {
	t.Helper()
	if p == nil {
		t.Fatal("nil profile")
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Profile.Save: %v", err)
	}
	return buf.Bytes()
}

// TestTrainFromCorpusBitIdentical pins the tentpole acceptance
// criterion: training from a streamed corpus produces a profile
// bitwise-identical to the in-memory Generate+TrainOn path at the same
// seed, on both evaluation networks.
func TestTrainFromCorpusBitIdentical(t *testing.T) {
	cases := []struct {
		name      string
		net       *network.Network
		technique Technique
		samples   int
	}{
		{"EPA-NET/hybrid", network.BuildEPANet(), TechniqueHybridRSL, 50},
		{"WSSC/rf", network.BuildWSSCSubnet(), TechniqueRF, 30},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			factory := testFactory(t, tc.net)
			const genSeed, profSeed = 21, 77
			cfg := ProfileConfig{Technique: tc.technique, Seed: profSeed}

			memSys := NewSystem(factory, tc.net, SystemConfig{})
			ds, err := factory.Generate(tc.samples, rand.New(rand.NewSource(genSeed)))
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if err := memSys.TrainOn(ds, cfg); err != nil {
				t.Fatalf("TrainOn: %v", err)
			}

			dir := t.TempDir()
			if _, err := factory.GenerateCorpus(context.Background(), tc.samples, genSeed, dir,
				dataset.CorpusOptions{ShardSamples: 16}); err != nil {
				t.Fatalf("GenerateCorpus: %v", err)
			}
			r, err := dataset.OpenCorpus(dir)
			if err != nil {
				t.Fatalf("OpenCorpus: %v", err)
			}
			corpusSys := NewSystem(factory, tc.net, SystemConfig{})
			// A window smaller than the junction count forces multiple
			// label passes over the corpus.
			if err := corpusSys.TrainFromCorpus(context.Background(), r, cfg,
				CorpusTrainOptions{JunctionWindow: 10}); err != nil {
				t.Fatalf("TrainFromCorpus: %v", err)
			}

			want := profileBytes(t, memSys.Profile())
			got := profileBytes(t, corpusSys.Profile())
			if !bytes.Equal(got, want) {
				t.Fatalf("streamed profile diverges from in-memory profile (%d vs %d bytes)",
					len(got), len(want))
			}
		})
	}
}

// corpusFixture generates a small corpus on the test network and
// returns its reader plus the factory that made it.
func corpusFixture(t *testing.T, samples int, seed int64) (*dataset.Factory, *dataset.CorpusReader) {
	t.Helper()
	factory := testFactory(t, network.BuildTestNet())
	dir := t.TempDir()
	if _, err := factory.GenerateCorpus(context.Background(), samples, seed, dir,
		dataset.CorpusOptions{ShardSamples: 10}); err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	r, err := dataset.OpenCorpus(dir)
	if err != nil {
		t.Fatalf("OpenCorpus: %v", err)
	}
	return factory, r
}

// TestTrainFromCorpusCheckpointResume pins the training-resume
// acceptance criterion: a checkpoint interrupted anywhere — at a window
// boundary, mid-frame, or corrupted in its tail — resumes to the
// bitwise-identical profile of an uninterrupted run.
func TestTrainFromCorpusCheckpointResume(t *testing.T) {
	_, r := corpusFixture(t, 30, 13)
	net := network.BuildTestNet()
	cfg := ProfileConfig{Technique: TechniqueLinear, Seed: 7}
	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	opt := CorpusTrainOptions{JunctionWindow: 2, CheckpointPath: ckpt}

	full, err := TrainProfileFromCorpus(context.Background(), r, len(net.Nodes), cfg, opt)
	if err != nil {
		t.Fatalf("TrainProfileFromCorpus: %v", err)
	}
	want := profileBytes(t, full)
	complete, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}

	// Crash-equivalent interruptions: the checkpoint cut at several
	// depths, including mid-frame and inside the header region's frames.
	cuts := []int{len(complete) - 7, len(complete) / 2, 70, len(complete)}
	for _, cut := range cuts {
		if cut > len(complete) {
			continue
		}
		if err := os.WriteFile(ckpt, complete[:cut], 0o644); err != nil {
			t.Fatalf("truncate checkpoint: %v", err)
		}
		p, err := TrainProfileFromCorpus(context.Background(), r, len(net.Nodes), cfg, opt)
		if err != nil {
			t.Fatalf("resume from cut %d: %v", cut, err)
		}
		if got := profileBytes(t, p); !bytes.Equal(got, want) {
			t.Fatalf("resume from cut %d diverges from uninterrupted profile", cut)
		}
	}

	// A corrupt tail byte invalidates its frame; resume refits from there.
	damaged := append([]byte(nil), complete...)
	damaged[len(damaged)-20] ^= 0x10
	if err := os.WriteFile(ckpt, damaged, 0o644); err != nil {
		t.Fatalf("corrupt checkpoint: %v", err)
	}
	p, err := TrainProfileFromCorpus(context.Background(), r, len(net.Nodes), cfg, opt)
	if err != nil {
		t.Fatalf("resume from corrupt tail: %v", err)
	}
	if got := profileBytes(t, p); !bytes.Equal(got, want) {
		t.Fatal("resume from corrupt tail diverges from uninterrupted profile")
	}

	// After a fully-resumed run the checkpoint is restored to its
	// complete form.
	final, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	if !bytes.Equal(final, complete) {
		t.Fatalf("checkpoint bytes diverge after resume (%d vs %d bytes)", len(final), len(complete))
	}
}

// TestCheckpointMismatch pins the checkpoint guard: a checkpoint from a
// different run fails fast, naming both sides.
func TestCheckpointMismatch(t *testing.T) {
	_, r := corpusFixture(t, 30, 13)
	net := network.BuildTestNet()
	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	opt := CorpusTrainOptions{JunctionWindow: 2, CheckpointPath: ckpt}

	if _, err := TrainProfileFromCorpus(context.Background(), r, len(net.Nodes),
		ProfileConfig{Technique: TechniqueLinear, Seed: 7}, opt); err != nil {
		t.Fatalf("TrainProfileFromCorpus: %v", err)
	}

	// Different profile seed.
	_, err := TrainProfileFromCorpus(context.Background(), r, len(net.Nodes),
		ProfileConfig{Technique: TechniqueLinear, Seed: 8}, opt)
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("seed mismatch error = %v, want ErrCheckpointMismatch", err)
	}
	if !strings.Contains(err.Error(), "seed 7") || !strings.Contains(err.Error(), "uses 8") {
		t.Fatalf("mismatch message %q does not name both seeds", err)
	}

	// Different technique.
	_, err = TrainProfileFromCorpus(context.Background(), r, len(net.Nodes),
		ProfileConfig{Technique: TechniqueLogistic, Seed: 7}, opt)
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("technique mismatch error = %v, want ErrCheckpointMismatch", err)
	}

	// A file that was never a checkpoint is refused, not clobbered.
	foreign := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(foreign, []byte("do not overwrite me"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	_, err = TrainProfileFromCorpus(context.Background(), r, len(net.Nodes),
		ProfileConfig{Technique: TechniqueLinear, Seed: 7},
		CorpusTrainOptions{JunctionWindow: 2, CheckpointPath: foreign})
	if err == nil || !strings.Contains(err.Error(), "not a training checkpoint") {
		t.Fatalf("foreign file error = %v, want refusal", err)
	}
	if b, _ := os.ReadFile(foreign); string(b) != "do not overwrite me" {
		t.Fatal("foreign file was clobbered")
	}
}

// TestTrainFromCorpusMatchGuard pins the System-level deployment guard:
// a corpus from a different deployment must not train this system.
func TestTrainFromCorpusMatchGuard(t *testing.T) {
	_, r := corpusFixture(t, 20, 13)
	net := network.BuildTestNet()
	other, err := dataset.NewFactory(net, []sensor.Sensor{
		{Kind: sensor.Pressure, Index: net.JunctionIndices()[0]},
		{Kind: sensor.Pressure, Index: net.JunctionIndices()[1]},
	}, dataset.Config{})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	sys := NewSystem(other, net, SystemConfig{})
	err = sys.TrainFromCorpus(context.Background(), r, ProfileConfig{Technique: TechniqueLinear, Seed: 1},
		CorpusTrainOptions{})
	if !errors.Is(err, dataset.ErrCorpusMismatch) {
		t.Fatalf("err = %v, want dataset.ErrCorpusMismatch", err)
	}
	if sys.Profile() != nil {
		t.Fatal("mismatched corpus installed a profile")
	}
}

// TestTrainFromCorpusCancellation pins context semantics on the
// training side: a pre-cancelled context trains nothing.
func TestTrainFromCorpusCancellation(t *testing.T) {
	factory, r := corpusFixture(t, 20, 13)
	net := network.BuildTestNet()
	sys := NewSystem(factory, net, SystemConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := sys.TrainFromCorpus(ctx, r, ProfileConfig{Technique: TechniqueLinear, Seed: 1},
		CorpusTrainOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sys.Profile() != nil {
		t.Fatal("cancelled training installed a profile")
	}
}
