// Streaming Phase-I training: fit the per-junction profile from an
// on-disk corpus instead of a materialized *dataset.Dataset, with a
// bounded resident window and an incremental checkpoint so a killed
// training run resumes past completed junctions.
//
// Resident memory is the feature matrix X (materialized once — every
// batch classifier needs all rows) plus one junction *window* of label
// columns (default 64); the full label matrix — the term that grows
// with network size — is never resident. Each window re-streams the
// corpus for its label columns, fits its classifiers in parallel with
// the exact per-column seeds MultiOutput.Fit would use, and appends the
// fitted models to the checkpoint. The assembled profile is therefore
// bit-identical to TrainProfile over the equivalent in-memory dataset —
// the project's standing invariant, pinned by test on EPA-NET and WSSC.
package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"

	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/mlearn"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// ErrCheckpointMismatch means a training checkpoint on disk belongs to
// a different run — another corpus, profile seed, or technique — and
// must not be resumed into this one.
var ErrCheckpointMismatch = errors.New("core: training checkpoint does not match this run")

// CorpusTrainOptions tunes TrainProfileFromCorpus.
type CorpusTrainOptions struct {
	// JunctionWindow is the number of junction label columns resident
	// (and fitted) at a time. Zero means 64. The window only bounds
	// memory; fitted models are identical for any window size.
	JunctionWindow int

	// CheckpointPath, when set, appends each fitted per-junction model
	// to this file as training progresses and resumes past the valid
	// prefix on restart. A checkpoint from a different run fails with
	// ErrCheckpointMismatch; a torn tail (crash mid-append) is
	// truncated and refit.
	CheckpointPath string
}

// TrainProfileFromCorpus fits the profile from a streamed corpus
// (Algorithm 1 over shards). It is the out-of-core twin of
// TrainProfile: same validation, same per-column classifier seeds, and
// a bitwise-identical profile for the corpus produced by
// GenerateCorpus at the same seed.
func TrainProfileFromCorpus(ctx context.Context, r *dataset.CorpusReader, nodeCount int, cfg ProfileConfig, opt CorpusTrainOptions) (*Profile, error) {
	if cfg.Technique == "" {
		cfg.Technique = TechniqueHybridRSL
	}
	if _, err := ParseTechnique(string(cfg.Technique)); err != nil {
		return nil, err
	}
	junctions := r.Junctions()
	if len(junctions) == 0 {
		return nil, fmt.Errorf("core: dataset has no junction columns")
	}
	for _, nodeIdx := range junctions {
		if nodeIdx < 0 || nodeIdx >= nodeCount {
			return nil, fmt.Errorf("core: junction node %d outside node count %d", nodeIdx, nodeCount)
		}
	}
	samples := r.SampleCount()
	if samples == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	window := opt.JunctionWindow
	if window <= 0 {
		window = 64
	}

	models := make([]mlearn.Classifier, len(junctions))
	fitted := 0
	if opt.CheckpointPath != "" {
		meta := ckptMeta{
			CorpusSeed:   r.Seed(),
			Deployment:   r.Deployment(),
			ConfigDigest: r.ConfigDigest(),
			ProfileSeed:  cfg.Seed,
			Samples:      samples,
			Junctions:    len(junctions),
			Technique:    string(cfg.Technique),
		}
		ck, n, err := openCheckpoint(opt.CheckpointPath, meta, models)
		if err != nil {
			return nil, err
		}
		defer ck.close()
		fitted = n
		if err := trainCorpusWindows(ctx, r, cfg, models, fitted, window, ck); err != nil {
			return nil, err
		}
	} else if err := trainCorpusWindows(ctx, r, cfg, models, 0, window, nil); err != nil {
		return nil, err
	}

	mo, err := mlearn.AssembleMultiOutput(cfg.Seed, models)
	if err != nil {
		return nil, fmt.Errorf("core: profile training: %w", err)
	}
	return &Profile{
		technique: cfg.Technique,
		model:     mo,
		junctions: junctions,
		nodeCount: nodeCount,
	}, nil
}

// trainCorpusWindows fits label columns [fitted, len(models)) in
// junction windows, streaming the corpus once per window for its label
// columns. models[0:fitted] must already hold checkpointed classifiers.
func trainCorpusWindows(ctx context.Context, r *dataset.CorpusReader, cfg ProfileConfig, models []mlearn.Classifier, fitted, window int, ck *checkpoint) error {
	outputs := len(models)
	if fitted >= outputs {
		return nil
	}
	samples := r.SampleCount()
	featDim := r.FeatureDim()

	// X is materialized once; every batch classifier needs all rows, so
	// it is the floor of the resident window. Rows share one backing
	// array to keep the allocation count flat.
	x := make([][]float64, samples)
	flat := make([]float64, samples*featDim)
	row := 0
	err := r.Each(ctx, func(s *dataset.CorpusSample) error {
		if row >= samples {
			return fmt.Errorf("core: corpus yielded more than its declared %d samples", samples)
		}
		x[row] = flat[row*featDim : (row+1)*featDim]
		copy(x[row], s.Features)
		row++
		return nil
	})
	if err != nil {
		return err
	}
	if row != samples {
		return fmt.Errorf("core: corpus yielded %d samples, declared %d", row, samples)
	}

	factory := func(seed int64) mlearn.Classifier {
		c, err := mlearn.NewByName(string(cfg.Technique), seed)
		if err != nil {
			// Unreachable: the name was validated before training.
			panic(err)
		}
		return c
	}

	colsFlat := make([]int, window*samples)
	for lo := fitted; lo < outputs; {
		hi := lo + window
		if hi > outputs {
			hi = outputs
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		// One pass over the corpus fills this window's label columns.
		row = 0
		err := r.Each(ctx, func(s *dataset.CorpusSample) error {
			for v := lo; v < hi; v++ {
				colsFlat[(v-lo)*samples+row] = s.Label(v)
			}
			row++
			return nil
		})
		if err != nil {
			return err
		}
		row = 0

		// Fit the window in parallel with MultiOutput.Fit's exact
		// per-column seed derivation, so the streamed profile is
		// bit-identical to the in-memory one.
		errs := make([]error, hi-lo)
		workers := runtime.NumCPU()
		if workers > hi-lo {
			workers = hi - lo
		}
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for v := range work {
					col := colsFlat[(v-lo)*samples : (v-lo+1)*samples]
					c := factory(cfg.Seed + int64(v)*31337)
					if err := c.Fit(x, col); err != nil {
						errs[v-lo] = fmt.Errorf("output %d: %w", v, err)
						continue
					}
					models[v] = c
				}
			}()
		}
		for v := lo; v < hi; v++ {
			work <- v
		}
		close(work)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return fmt.Errorf("core: profile training: %w", err)
			}
		}

		if ck != nil {
			for v := lo; v < hi; v++ {
				if err := ck.save(v, models[v]); err != nil {
					return err
				}
			}
			if err := ck.sync(); err != nil {
				return err
			}
		}
		lo = hi
	}
	return nil
}

// TrainFromCorpus runs streamed Phase-I training against the system's
// live factory: the corpus must match the deployment (fingerprint +
// config digest, failing fast with ErrCorpusMismatch otherwise), and on
// success the profile is installed with the same atomic swap TrainOn
// uses. For a corpus generated by GenerateCorpus at seed s this is
// bit-identical to Train with rng seed s.
func (s *System) TrainFromCorpus(ctx context.Context, r *dataset.CorpusReader, cfg ProfileConfig, opt CorpusTrainOptions) error {
	if err := r.Match(s.factory); err != nil {
		return err
	}
	p, err := TrainProfileFromCorpus(ctx, r, len(s.net.Nodes), cfg, opt)
	if err != nil {
		return err
	}
	s.profile.Store(p)
	s.compiled.Store(nil)
	return nil
}

// Training checkpoint file: a header binding the checkpoint to one
// (corpus, profile config) pair, then one length-prefixed CRC-framed
// classifier blob per fitted junction column, in column order. Frames
// are appended and fsynced per window; resume loads the valid frame
// prefix and truncates a torn tail. The framing deliberately avoids
// concatenated bare gob streams — two gob decoders over one file must
// share a reader (see LoadProfile) — by giving every frame an explicit
// length.
//
//	offset  size  field
//	0       4     magic "AQCK"
//	4       2     checkpoint format version (currently 1)
//	6       2     reserved (zero)
//	8       8     corpus generation seed (int64)
//	16      8     corpus deployment fingerprint
//	24      8     corpus Config digest
//	32      8     profile training seed (int64)
//	40      4     sample count
//	44      4     junction column count
//	48      4     technique name length T
//	52      T     technique name
//	..      4     header CRC-32C over every preceding byte
//
// Each frame: column index u32 | payload length u32 | payload
// (mlearn.SaveClassifier bytes) | payload CRC-32C.
const (
	ckptMagic      = "AQCK"
	ckptVersion    = 1
	ckptFixedBytes = 52
	maxCkptFrame   = 1 << 30
)

var ckptCRCTable = crc32.MakeTable(crc32.Castagnoli)

// ckptMeta is everything a checkpoint must agree on to be resumable
// into a run.
type ckptMeta struct {
	CorpusSeed   int64
	Deployment   uint64
	ConfigDigest uint64
	ProfileSeed  int64
	Samples      int
	Junctions    int
	Technique    string
}

func (m ckptMeta) encode() []byte {
	buf := make([]byte, ckptFixedBytes+len(m.Technique)+4)
	copy(buf[0:4], ckptMagic)
	binary.LittleEndian.PutUint16(buf[4:6], ckptVersion)
	binary.LittleEndian.PutUint16(buf[6:8], 0)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(m.CorpusSeed))
	binary.LittleEndian.PutUint64(buf[16:24], m.Deployment)
	binary.LittleEndian.PutUint64(buf[24:32], m.ConfigDigest)
	binary.LittleEndian.PutUint64(buf[32:40], uint64(m.ProfileSeed))
	binary.LittleEndian.PutUint32(buf[40:44], uint32(m.Samples))
	binary.LittleEndian.PutUint32(buf[44:48], uint32(m.Junctions))
	binary.LittleEndian.PutUint32(buf[48:52], uint32(len(m.Technique)))
	copy(buf[ckptFixedBytes:], m.Technique)
	off := ckptFixedBytes + len(m.Technique)
	binary.LittleEndian.PutUint32(buf[off:off+4], crc32.Checksum(buf[:off], ckptCRCTable))
	return buf
}

// checkpoint is an open training checkpoint positioned for appends.
type checkpoint struct {
	f     *os.File
	saves *telemetry.Counter
	loads *telemetry.Counter
}

// openCheckpoint opens (or creates) the checkpoint at path for the run
// described by meta, loading the valid classifier prefix into models
// and returning its length. A structurally valid checkpoint whose
// metadata differs fails with ErrCheckpointMismatch; a torn header or
// torn trailing frame (both crash artifacts of this writer) is
// truncated and regenerated; a file that is not a checkpoint at all is
// refused.
func openCheckpoint(path string, meta ckptMeta, models []mlearn.Classifier) (*checkpoint, int, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("core: checkpoint: %w", err)
	}
	reg := telemetry.Default()
	ck := &checkpoint{
		f:     f,
		saves: reg.Counter("core_checkpoint_saves_total"),
		loads: reg.Counter("core_checkpoint_loads_total"),
	}
	n, err := ck.loadPrefix(meta, models)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return ck, n, nil
}

// loadPrefix validates the header (writing a fresh one when the file is
// new or holds only a torn header), loads the contiguous valid frame
// prefix into models, and truncates everything after it so the file
// ends exactly where appends resume.
func (ck *checkpoint) loadPrefix(meta ckptMeta, models []mlearn.Classifier) (int, error) {
	st, err := ck.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("core: checkpoint: %w", err)
	}
	hdr := meta.encode()
	if st.Size() >= 4 {
		var magic [4]byte
		if _, err := ck.f.ReadAt(magic[:], 0); err != nil {
			return 0, fmt.Errorf("core: checkpoint: %w", err)
		}
		// Refuse to clobber a file that was never a checkpoint.
		if string(magic[:]) != ckptMagic {
			return 0, fmt.Errorf("core: %s is not a training checkpoint (magic %q)", ck.f.Name(), magic[:])
		}
	}
	if st.Size() < int64(ckptFixedBytes+4) {
		// New file, or a crash before the header finished: start over.
		return 0, ck.restart(hdr)
	}
	// The on-disk header is sized by its own technique-name length, which
	// may differ from this run's — read it by its declared size so a
	// technique change reports a mismatch rather than a torn header.
	fixed := make([]byte, ckptFixedBytes)
	if _, err := ck.f.ReadAt(fixed, 0); err != nil {
		return 0, fmt.Errorf("core: checkpoint: %w", err)
	}
	techLen := int(binary.LittleEndian.Uint32(fixed[48:52]))
	if techLen < 0 || techLen > 1<<10 || st.Size() < int64(ckptFixedBytes+techLen+4) {
		// Magic matched but the header is torn — our own crash debris.
		return 0, ck.restart(hdr)
	}
	got := make([]byte, ckptFixedBytes+techLen+4)
	if _, err := ck.f.ReadAt(got, 0); err != nil {
		return 0, fmt.Errorf("core: checkpoint: %w", err)
	}
	onDisk, ok := decodeCkptMeta(got)
	if !ok {
		return 0, ck.restart(hdr)
	}
	if err := matchCkptMeta(ck.f.Name(), onDisk, meta); err != nil {
		return 0, err
	}

	// Scan frames from just past the header; the first torn, corrupt or
	// out-of-order frame ends the valid prefix.
	off := int64(len(got))
	if _, err := ck.f.Seek(off, io.SeekStart); err != nil {
		return 0, fmt.Errorf("core: checkpoint: %w", err)
	}
	next := 0
	for next < len(models) {
		var fh [8]byte
		if _, err := io.ReadFull(ck.f, fh[:]); err != nil {
			break
		}
		idx := int(binary.LittleEndian.Uint32(fh[0:4]))
		n := int(binary.LittleEndian.Uint32(fh[4:8]))
		if idx != next || n <= 0 || n > maxCkptFrame {
			break
		}
		payload := make([]byte, n+4)
		if _, err := io.ReadFull(ck.f, payload); err != nil {
			break
		}
		body := payload[:n]
		if crc32.Checksum(body, ckptCRCTable) != binary.LittleEndian.Uint32(payload[n:]) {
			break
		}
		c, err := mlearn.LoadClassifier(bytes.NewReader(body))
		if err != nil {
			break
		}
		models[next] = c
		next++
		off += int64(8 + n + 4)
		ck.loads.Inc()
	}
	if err := ck.f.Truncate(off); err != nil {
		return 0, fmt.Errorf("core: checkpoint: %w", err)
	}
	if _, err := ck.f.Seek(off, io.SeekStart); err != nil {
		return 0, fmt.Errorf("core: checkpoint: %w", err)
	}
	return next, nil
}

// restart rewrites the file as an empty checkpoint with the given
// header, leaving the write position at its end.
func (ck *checkpoint) restart(hdr []byte) error {
	if err := ck.f.Truncate(0); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if _, err := ck.f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if _, err := ck.f.Seek(int64(len(hdr)), io.SeekStart); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}

// save appends one fitted column's classifier frame.
func (ck *checkpoint) save(col int, c mlearn.Classifier) error {
	var buf bytes.Buffer
	if err := mlearn.SaveClassifier(&buf, c); err != nil {
		return fmt.Errorf("core: checkpoint column %d: %w", col, err)
	}
	body := buf.Bytes()
	frame := make([]byte, 8+len(body)+4)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(col))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(body)))
	copy(frame[8:], body)
	binary.LittleEndian.PutUint32(frame[8+len(body):], crc32.Checksum(body, ckptCRCTable))
	if _, err := ck.f.Write(frame); err != nil {
		return fmt.Errorf("core: checkpoint column %d: %w", col, err)
	}
	ck.saves.Inc()
	return nil
}

// sync flushes appended frames to stable storage (called per window).
func (ck *checkpoint) sync() error {
	if err := ck.f.Sync(); err != nil {
		return fmt.Errorf("core: checkpoint sync: %w", err)
	}
	return nil
}

func (ck *checkpoint) close() error { return ck.f.Close() }

// decodeCkptMeta parses an encoded header, reporting ok=false when it
// is structurally invalid (torn write).
func decodeCkptMeta(buf []byte) (ckptMeta, bool) {
	if len(buf) < ckptFixedBytes+4 || string(buf[0:4]) != ckptMagic {
		return ckptMeta{}, false
	}
	if binary.LittleEndian.Uint16(buf[4:6]) != ckptVersion {
		return ckptMeta{}, false
	}
	techLen := int(binary.LittleEndian.Uint32(buf[48:52]))
	if techLen < 0 || ckptFixedBytes+techLen+4 != len(buf) {
		return ckptMeta{}, false
	}
	off := ckptFixedBytes + techLen
	if crc32.Checksum(buf[:off], ckptCRCTable) != binary.LittleEndian.Uint32(buf[off:off+4]) {
		return ckptMeta{}, false
	}
	return ckptMeta{
		CorpusSeed:   int64(binary.LittleEndian.Uint64(buf[8:16])),
		Deployment:   binary.LittleEndian.Uint64(buf[16:24]),
		ConfigDigest: binary.LittleEndian.Uint64(buf[24:32]),
		ProfileSeed:  int64(binary.LittleEndian.Uint64(buf[32:40])),
		Samples:      int(binary.LittleEndian.Uint32(buf[40:44])),
		Junctions:    int(binary.LittleEndian.Uint32(buf[44:48])),
		Technique:    string(buf[ckptFixedBytes : ckptFixedBytes+techLen]),
	}, true
}

// matchCkptMeta fails fast when a valid checkpoint belongs to a
// different run, naming both sides of the first disagreement.
func matchCkptMeta(path string, got, want ckptMeta) error {
	switch {
	case got.CorpusSeed != want.CorpusSeed:
		return fmt.Errorf("%w: %s: corpus seed %d, this run uses %d",
			ErrCheckpointMismatch, path, got.CorpusSeed, want.CorpusSeed)
	case got.Deployment != want.Deployment:
		return fmt.Errorf("%w: %s: deployment fingerprint %016x, this run's corpus is %016x",
			ErrCheckpointMismatch, path, got.Deployment, want.Deployment)
	case got.ConfigDigest != want.ConfigDigest:
		return fmt.Errorf("%w: %s: config digest %016x, this run's corpus is %016x",
			ErrCheckpointMismatch, path, got.ConfigDigest, want.ConfigDigest)
	case got.ProfileSeed != want.ProfileSeed:
		return fmt.Errorf("%w: %s: profile seed %d, this run uses %d",
			ErrCheckpointMismatch, path, got.ProfileSeed, want.ProfileSeed)
	case got.Samples != want.Samples:
		return fmt.Errorf("%w: %s: %d samples, this run's corpus has %d",
			ErrCheckpointMismatch, path, got.Samples, want.Samples)
	case got.Junctions != want.Junctions:
		return fmt.Errorf("%w: %s: %d junction columns, this run has %d",
			ErrCheckpointMismatch, path, got.Junctions, want.Junctions)
	case got.Technique != want.Technique:
		return fmt.Errorf("%w: %s: technique %q, this run uses %q",
			ErrCheckpointMismatch, path, got.Technique, want.Technique)
	}
	return nil
}
