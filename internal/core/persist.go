package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/aquascale/aquascale/internal/mlearn"
)

// profileHeader carries the profile metadata alongside the serialized
// classifier bank.
type profileHeader struct {
	Technique string
	Junctions []int
	NodeCount int
}

// Save serializes a trained profile so online deployments can skip
// Phase-I retraining.
func (p *Profile) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(profileHeader{
		Technique: string(p.technique),
		Junctions: p.junctions,
		NodeCount: p.nodeCount,
	}); err != nil {
		return fmt.Errorf("core: encode profile header: %w", err)
	}
	return p.model.Save(w)
}

// LoadProfile reads a profile previously written by Save. It accepts any
// reader, including network streams (e.g. an HTTP request body).
func LoadProfile(r io.Reader) (*Profile, error) {
	// The header and the model bank are two consecutive gob streams read
	// by two decoders. Both must pull from one shared io.ByteReader:
	// given a plain reader, each gob.Decoder would add its own buffering
	// and read ahead past its stream, swallowing the next section's bytes
	// (bytes.Reader hid this; HTTP bodies and pipes hit it).
	br := bufio.NewReader(r)
	dec := gob.NewDecoder(br)
	var h profileHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("core: decode profile header: %w", err)
	}
	if h.NodeCount <= 0 || len(h.Junctions) == 0 {
		return nil, fmt.Errorf("core: corrupt profile header: %d nodes, %d junctions",
			h.NodeCount, len(h.Junctions))
	}
	model, err := mlearn.LoadMultiOutput(br)
	if err != nil {
		return nil, err
	}
	if model.Outputs() != len(h.Junctions) {
		return nil, fmt.Errorf("core: profile has %d outputs but %d junction columns",
			model.Outputs(), len(h.Junctions))
	}
	return &Profile{
		technique: Technique(h.Technique),
		model:     model,
		junctions: h.Junctions,
		nodeCount: h.NodeCount,
	}, nil
}

// SetProfile installs a pre-trained (e.g. loaded) profile into the system.
// The swap is atomic: concurrent Localize calls see either the old or the
// new profile in full, never a mix, so online services can hot-reload a
// profile under load. Any compiled snapshot (and its baseline memo) is
// dropped — it was built from the previous profile — so callers on the
// fast path must Compile again after swapping.
func (s *System) SetProfile(p *Profile) error {
	if p == nil {
		return fmt.Errorf("core: nil profile")
	}
	if p.nodeCount != len(s.net.Nodes) {
		return fmt.Errorf("core: profile covers %d nodes, network has %d",
			p.nodeCount, len(s.net.Nodes))
	}
	s.profile.Store(p)
	s.compiled.Store(nil)
	return nil
}
