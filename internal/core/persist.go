package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/aquascale/aquascale/internal/mlearn"
)

// profileHeader carries the profile metadata alongside the serialized
// classifier bank.
type profileHeader struct {
	Technique string
	Junctions []int
	NodeCount int
}

// Save serializes a trained profile so online deployments can skip
// Phase-I retraining.
func (p *Profile) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(profileHeader{
		Technique: p.technique,
		Junctions: p.junctions,
		NodeCount: p.nodeCount,
	}); err != nil {
		return fmt.Errorf("core: encode profile header: %w", err)
	}
	return p.model.Save(w)
}

// LoadProfile reads a profile previously written by Save.
func LoadProfile(r io.Reader) (*Profile, error) {
	dec := gob.NewDecoder(r)
	var h profileHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("core: decode profile header: %w", err)
	}
	if h.NodeCount <= 0 || len(h.Junctions) == 0 {
		return nil, fmt.Errorf("core: corrupt profile header: %d nodes, %d junctions",
			h.NodeCount, len(h.Junctions))
	}
	model, err := mlearn.LoadMultiOutput(r)
	if err != nil {
		return nil, err
	}
	if model.Outputs() != len(h.Junctions) {
		return nil, fmt.Errorf("core: profile has %d outputs but %d junction columns",
			model.Outputs(), len(h.Junctions))
	}
	return &Profile{
		technique: h.Technique,
		model:     model,
		junctions: h.Junctions,
		nodeCount: h.NodeCount,
	}, nil
}

// SetProfile installs a pre-trained (e.g. loaded) profile into the system.
func (s *System) SetProfile(p *Profile) error {
	if p == nil {
		return fmt.Errorf("core: nil profile")
	}
	if p.nodeCount != len(s.net.Nodes) {
		return fmt.Errorf("core: profile covers %d nodes, network has %d",
			p.nodeCount, len(s.net.Nodes))
	}
	s.profile = p
	return nil
}
