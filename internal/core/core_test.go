package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
	"github.com/aquascale/aquascale/internal/social"
)

// syntheticDataset fabricates a trivially learnable dataset: feature j is
// the (negated) indicator of a leak at junction column j.
func syntheticDataset(junctions []int, samples int, rng *rand.Rand) *dataset.Dataset {
	ds := &dataset.Dataset{Junctions: junctions}
	for i := 0; i < samples; i++ {
		labels := make([]int, len(junctions))
		labels[rng.Intn(len(junctions))] = 1
		features := make([]float64, len(junctions))
		for j, v := range labels {
			features[j] = -float64(v)*2 + rng.NormFloat64()*0.1
		}
		ds.Samples = append(ds.Samples, dataset.Sample{Features: features, Labels: labels})
	}
	return ds
}

func TestTrainProfileAndPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	junctions := []int{2, 3, 5, 7} // node indices in a 9-node network
	ds := syntheticDataset(junctions, 200, rng)
	p, err := TrainProfile(ds, 9, ProfileConfig{Technique: "gb", Seed: 3})
	if err != nil {
		t.Fatalf("TrainProfile: %v", err)
	}
	if p.Technique() != "gb" {
		t.Fatalf("technique = %q", p.Technique())
	}
	// A leak signature at column 2 (node 5).
	features := []float64{0, 0, -2, 0}
	proba, err := p.PredictProba(features)
	if err != nil {
		t.Fatalf("PredictProba: %v", err)
	}
	if len(proba) != 9 {
		t.Fatalf("proba length = %d, want 9", len(proba))
	}
	if proba[5] < 0.5 {
		t.Fatalf("node 5 proba = %v, want > 0.5", proba[5])
	}
	for _, v := range []int{0, 1, 4, 6, 8} {
		if proba[v] != 0 {
			t.Fatalf("non-junction node %d proba = %v, want 0", v, proba[v])
		}
	}
	pred, err := p.Predict(features)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if pred[5] != 1 {
		t.Fatalf("pred = %v, want node 5 flagged", pred)
	}
}

func TestTrainProfileValidation(t *testing.T) {
	empty := &dataset.Dataset{Junctions: []int{0}}
	if _, err := TrainProfile(empty, 2, ProfileConfig{}); err == nil {
		t.Fatal("empty dataset should error")
	}
	ds := syntheticDataset([]int{0, 1}, 10, rand.New(rand.NewSource(1)))
	if _, err := TrainProfile(ds, 2, ProfileConfig{Technique: "nope"}); err == nil {
		t.Fatal("unknown technique should error")
	}
	if _, err := TrainProfile(ds, 1, ProfileConfig{Technique: "linear"}); err == nil {
		t.Fatal("junction outside node count should error")
	}
	noJunctions := &dataset.Dataset{Samples: ds.Samples}
	if _, err := TrainProfile(noJunctions, 2, ProfileConfig{Technique: "linear"}); err == nil {
		t.Fatal("dataset without junctions should error")
	}
}

// buildSystem wires a small trained system on EPA-NET for end-to-end tests.
func buildSystem(t *testing.T, technique Technique, trainSamples int) *System {
	t.Helper()
	net := network.BuildEPANet()
	base, err := hydraulic.RunEPS(net, hydraulic.EPSOptions{Duration: 6 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		t.Fatalf("baseline EPS: %v", err)
	}
	placer, err := sensor.NewPlacer(net, base)
	if err != nil {
		t.Fatalf("NewPlacer: %v", err)
	}
	sensors, err := placer.KMedoids(60, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("KMedoids: %v", err)
	}
	factory, err := dataset.NewFactory(net, sensors, dataset.Config{
		Noise: sensor.DefaultNoise,
		Leaks: leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2},
	})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	sys := NewSystem(factory, net, SystemConfig{})
	if err := sys.Train(trainSamples, ProfileConfig{Technique: technique, Seed: 5}, rand.New(rand.NewSource(3))); err != nil {
		t.Fatalf("Train: %v", err)
	}
	return sys
}

func TestSystemEndToEndIoTOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training is slow")
	}
	sys := buildSystem(t, "gb", 400)
	res, err := sys.Evaluate(40,
		leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2},
		ObserveOptions{Sources: Sources{}},
		rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Scenarios != 40 {
		t.Fatalf("scenarios = %d", res.Scenarios)
	}
	// A 91-junction network with 1-2 leaks: random guessing scores ~0.02.
	// Even a small profile should be an order of magnitude better.
	if res.MeanHamming < 0.12 {
		t.Fatalf("IoT-only Hamming = %v, want ≥ 0.12", res.MeanHamming)
	}
	if res.HumanAdded != 0 {
		t.Fatalf("human added %d nodes with human source disabled", res.HumanAdded)
	}
}

func TestSystemSourcesImproveScore(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training is slow")
	}
	sys := buildSystem(t, "gb", 400)
	leakCfg := leak.GeneratorConfig{MinEvents: 2, MaxEvents: 4}
	iot, err := sys.Evaluate(50, leakCfg, ObserveOptions{}, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatalf("Evaluate(IoT): %v", err)
	}
	all, err := sys.Evaluate(50, leakCfg,
		ObserveOptions{Sources: Sources{Weather: true, Human: true}, ElapsedSlots: 4, GammaM: 60},
		rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatalf("Evaluate(all): %v", err)
	}
	if all.MeanHamming <= iot.MeanHamming {
		t.Fatalf("fusing sources did not help: IoT=%v, all=%v", iot.MeanHamming, all.MeanHamming)
	}
	if all.HumanAdded == 0 {
		t.Fatal("human input never fired")
	}
}

func TestGenerateColdScenario(t *testing.T) {
	net := network.BuildEPANet()
	factory := testFactory(t, net)
	sys := NewSystem(factory, net, SystemConfig{})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		sc, err := sys.GenerateColdScenario(leak.GeneratorConfig{MinEvents: 1, MaxEvents: 5}, rng)
		if err != nil {
			t.Fatalf("GenerateColdScenario: %v", err)
		}
		if len(sc.Events) < 1 || len(sc.Events) > 5 {
			t.Fatalf("event count = %d", len(sc.Events))
		}
		for _, e := range sc.Events {
			if !sc.Frozen[e.Node] {
				t.Fatal("cold leak at unfrozen node")
			}
			if net.Nodes[e.Node].Type != network.Junction {
				t.Fatal("leak at non-junction")
			}
		}
	}
	if _, err := sys.GenerateColdScenario(leak.GeneratorConfig{}, nil); err == nil {
		t.Fatal("nil rng should error")
	}
	if _, err := sys.GenerateColdScenario(leak.GeneratorConfig{MinEvents: 5, MaxEvents: 1}, rng); err == nil {
		t.Fatal("invalid bounds should error")
	}
}

func testFactory(t testing.TB, net *network.Network) *dataset.Factory {
	t.Helper()
	sensors := []sensor.Sensor{{Kind: sensor.Pressure, Index: net.JunctionIndices()[0]}}
	f, err := dataset.NewFactory(net, sensors, dataset.Config{})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	return f
}

func TestObserveSourceToggles(t *testing.T) {
	net := network.BuildEPANet()
	sys := NewSystem(testFactory(t, net), net, SystemConfig{})
	rng := rand.New(rand.NewSource(9))
	sc, err := sys.GenerateColdScenario(leak.GeneratorConfig{MinEvents: 2, MaxEvents: 2}, rng)
	if err != nil {
		t.Fatalf("GenerateColdScenario: %v", err)
	}

	obs, err := sys.Observe(sc, ObserveOptions{}, rng)
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if obs.Frozen != nil || obs.Cliques != nil {
		t.Fatal("disabled sources leaked into observation")
	}
	if len(obs.Features) != 1 {
		t.Fatalf("features = %d", len(obs.Features))
	}

	obs, err = sys.Observe(sc, ObserveOptions{
		Sources:      Sources{Weather: true, Human: true},
		ElapsedSlots: 8,
		GammaM:       100,
	}, rng)
	if err != nil {
		t.Fatalf("Observe(all): %v", err)
	}
	if obs.Frozen == nil {
		t.Fatal("weather enabled but no frozen mask")
	}
	// With λ=1 over 8 slots, reports (and usually cliques) exist.
	if len(obs.Cliques) == 0 {
		t.Fatal("human enabled but no cliques after 8 slots")
	}
}

func TestLocalizeRequiresTraining(t *testing.T) {
	net := network.BuildEPANet()
	sys := NewSystem(testFactory(t, net), net, SystemConfig{})
	if _, _, err := sys.Localize(Observation{Features: []float64{0}}); err == nil {
		t.Fatal("untrained Localize should error")
	}
	if _, err := sys.Evaluate(5, leak.GeneratorConfig{}, ObserveOptions{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("untrained Evaluate should error")
	}
}

var _ = social.Clique{} // keep the import for Observation documentation
