package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/fusion"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// trainOnNet fits a profile over a network's real junction set using the
// synthetic indicator dataset, so compile tests cover the true column→node
// scatter of each evaluation network without slow hydraulic generation.
func trainOnNet(t *testing.T, net *network.Network, technique Technique, samples int) *System {
	t.Helper()
	sys := NewSystem(testFactory(t, net), net, SystemConfig{})
	ds := syntheticDataset(net.JunctionIndices(), samples, rand.New(rand.NewSource(17)))
	if err := sys.TrainOn(ds, ProfileConfig{Technique: technique, Seed: 5}); err != nil {
		t.Fatalf("TrainOn: %v", err)
	}
	return sys
}

// leakFeatures builds a feature vector with a leak signature at column
// hot, plus small noise everywhere.
func leakFeatures(rng *rand.Rand, dims, hot int) []float64 {
	x := make([]float64, dims)
	for j := range x {
		x[j] = rng.NormFloat64() * 0.1
	}
	x[hot] = -2
	return x
}

// TestCompiledLocalizeBitIdentical pins the acceptance criterion: on both
// evaluation networks the compiled observe path must produce bit-identical
// probabilities to the pointer path.
func TestCompiledLocalizeBitIdentical(t *testing.T) {
	cases := []struct {
		name      string
		net       *network.Network
		technique Technique
		samples   int
	}{
		{"EPA-NET/hybrid", network.BuildEPANet(), TechniqueHybridRSL, 50},
		{"WSSC/rf", network.BuildWSSCSubnet(), TechniqueRF, 30},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sys := trainOnNet(t, tc.net, tc.technique, tc.samples)
			dims := len(tc.net.JunctionIndices())
			rng := rand.New(rand.NewSource(23))

			probeSet := make([][]float64, 0, 6)
			for i := 0; i < 5; i++ {
				probeSet = append(probeSet, leakFeatures(rng, dims, rng.Intn(dims)))
			}
			dirty := leakFeatures(rng, dims, 0)
			dirty[1] = math.NaN()
			probeSet = append(probeSet, dirty)

			want := make([]*fusion.Prediction, len(probeSet))
			for i, x := range probeSet {
				pred, _, err := sys.Localize(Observation{Features: x})
				if err != nil {
					t.Fatalf("pointer Localize: %v", err)
				}
				want[i] = pred
			}

			if sys.Compiled() {
				t.Fatal("Compiled() true before Compile")
			}
			if err := sys.Compile(); err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if !sys.Compiled() {
				t.Fatal("Compiled() false after Compile")
			}

			for i, x := range probeSet {
				pred, _, err := sys.Localize(Observation{Features: x})
				if err != nil {
					t.Fatalf("compiled Localize: %v", err)
				}
				if len(pred.Proba) != len(tc.net.Nodes) {
					t.Fatalf("proba length = %d, want %d", len(pred.Proba), len(tc.net.Nodes))
				}
				for v := range pred.Proba {
					if math.Float64bits(pred.Proba[v]) != math.Float64bits(want[i].Proba[v]) {
						t.Fatalf("probe %d node %d: compiled %v != pointer %v",
							i, v, pred.Proba[v], want[i].Proba[v])
					}
				}
			}
		})
	}
}

// TestCompileInvalidation pins the hot-swap rule: TrainOn and SetProfile
// drop the compiled snapshot, and a recompile restores the fast path.
func TestCompileInvalidation(t *testing.T) {
	net := network.BuildEPANet()
	sys := NewSystem(testFactory(t, net), net, SystemConfig{})
	if err := sys.Compile(); err == nil {
		t.Fatal("Compile on an untrained system should error")
	}

	ds := syntheticDataset(net.JunctionIndices(), 30, rand.New(rand.NewSource(1)))
	if err := sys.TrainOn(ds, ProfileConfig{Technique: TechniqueLinear, Seed: 1}); err != nil {
		t.Fatalf("TrainOn: %v", err)
	}
	if err := sys.Compile(); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !sys.Compiled() {
		t.Fatal("not compiled after Compile")
	}

	// Retraining installs a fresh profile: the snapshot must be gone.
	if err := sys.TrainOn(ds, ProfileConfig{Technique: TechniqueLinear, Seed: 2}); err != nil {
		t.Fatalf("TrainOn: %v", err)
	}
	if sys.Compiled() {
		t.Fatal("snapshot survived TrainOn")
	}

	if err := sys.Compile(); err != nil {
		t.Fatalf("recompile: %v", err)
	}
	if !sys.Compiled() {
		t.Fatal("recompile did not restore the fast path")
	}

	// Hot-swapping a loaded profile must drop both snapshot and memo.
	p2, err := TrainProfile(ds, len(net.Nodes), ProfileConfig{Technique: TechniqueLinear, Seed: 3})
	if err != nil {
		t.Fatalf("TrainProfile: %v", err)
	}
	if err := sys.SetProfile(p2); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	if sys.Compiled() {
		t.Fatal("snapshot survived SetProfile")
	}
	if err := sys.Compile(); err != nil {
		t.Fatalf("Compile after swap: %v", err)
	}
	if !sys.Compiled() {
		t.Fatal("not compiled after swap + Compile")
	}
}

// TestQuiescentBaselineMemo pins the memo semantics: hours wrap into the
// daily demand cycle, memoized lookups return the shared slice without
// re-solving, and the uncompiled path still works via the factory.
func TestQuiescentBaselineMemo(t *testing.T) {
	net := network.BuildEPANet()
	sys := trainOnNet(t, net, TechniqueLinear, 20)

	// Uncompiled fallback.
	cold, err := sys.QuiescentBaseline(8)
	if err != nil {
		t.Fatalf("uncompiled QuiescentBaseline: %v", err)
	}
	if len(cold) != sys.Factory().SensorCount() {
		t.Fatalf("baseline length = %d, want %d", len(cold), sys.Factory().SensorCount())
	}

	if err := sys.Compile(); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	a, err := sys.QuiescentBaseline(8)
	if err != nil {
		t.Fatalf("QuiescentBaseline(8): %v", err)
	}
	b, err := sys.QuiescentBaseline(32) // same point in the daily cycle
	if err != nil {
		t.Fatalf("QuiescentBaseline(32): %v", err)
	}
	c, err := sys.QuiescentBaseline(-16) // ditto, wrapped from below
	if err != nil {
		t.Fatalf("QuiescentBaseline(-16): %v", err)
	}
	if &a[0] != &b[0] || &a[0] != &c[0] {
		t.Fatal("wrapped hours missed the memo entry")
	}

	want, err := sys.Factory().BaselineReadings(8 * time.Hour)
	if err != nil {
		t.Fatalf("BaselineReadings: %v", err)
	}
	for i := range want {
		if math.Float64bits(a[i]) != math.Float64bits(want[i]) {
			t.Fatalf("memoized baseline[%d] = %v, factory says %v", i, a[i], want[i])
		}
	}

	// The factory's base hour was warmed by Compile itself.
	baseHour := int(sys.Factory().BaseTime() / time.Hour)
	if _, err := sys.QuiescentBaseline(baseHour); err != nil {
		t.Fatalf("QuiescentBaseline(base): %v", err)
	}
}

// TestLocalizeIntoZeroAlloc pins the tentpole's allocation guarantee: the
// compiled observe path allocates nothing per request.
func TestLocalizeIntoZeroAlloc(t *testing.T) {
	net := network.BuildEPANet()
	sys := trainOnNet(t, net, TechniqueHybridRSL, 40)
	if err := sys.Compile(); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	dims := len(net.JunctionIndices())
	x := leakFeatures(rand.New(rand.NewSource(3)), dims, 7)
	pred := &fusion.Prediction{Proba: make([]float64, len(net.Nodes))}
	if got := testing.AllocsPerRun(100, func() {
		if _, err := sys.LocalizeInto(pred, Observation{Features: x}); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("compiled LocalizeInto allocated %v times per run, want 0", got)
	}
}

// TestLocalizeIntoContextZeroAlloc pins the tracing-compiled-in-but-
// unsampled guarantee: threading an untraced context through
// LocalizeIntoContext costs nothing — same 0 allocs/op as LocalizeInto,
// and bit-identical output.
func TestLocalizeIntoContextZeroAlloc(t *testing.T) {
	net := network.BuildEPANet()
	sys := trainOnNet(t, net, TechniqueHybridRSL, 40)
	if err := sys.Compile(); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	dims := len(net.JunctionIndices())
	x := leakFeatures(rand.New(rand.NewSource(3)), dims, 7)
	ctx := context.Background()

	plain := &fusion.Prediction{Proba: make([]float64, len(net.Nodes))}
	if _, err := sys.LocalizeInto(plain, Observation{Features: x}); err != nil {
		t.Fatalf("LocalizeInto: %v", err)
	}
	pred := &fusion.Prediction{Proba: make([]float64, len(net.Nodes))}
	if got := testing.AllocsPerRun(100, func() {
		if _, err := sys.LocalizeIntoContext(ctx, pred, Observation{Features: x}); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("untraced LocalizeIntoContext allocated %v times per run, want 0", got)
	}
	for v := range pred.Proba {
		if pred.Proba[v] != plain.Proba[v] {
			t.Fatalf("node %d: context path %v != plain path %v", v, pred.Proba[v], plain.Proba[v])
		}
	}
}

// TestLocalizeIntoContextRecordsStages pins the traced variant: a trace
// on the context sees the compiled-path stages.
func TestLocalizeIntoContextRecordsStages(t *testing.T) {
	net := network.BuildEPANet()
	sys := trainOnNet(t, net, TechniqueHybridRSL, 40)
	dims := len(net.JunctionIndices())
	x := leakFeatures(rand.New(rand.NewSource(3)), dims, 7)
	pred := &fusion.Prediction{Proba: make([]float64, len(net.Nodes))}

	// Pointer path first (not compiled yet).
	tr := telemetry.NewTrace(telemetry.TraceID{})
	ctx := telemetry.ContextWithTrace(context.Background(), tr)
	if _, err := sys.LocalizeIntoContext(ctx, pred, Observation{Features: x}); err != nil {
		t.Fatalf("LocalizeIntoContext: %v", err)
	}
	snap := tr.Snapshot()
	if len(snap.Events) != 1 || snap.Events[0].Stage != string(telemetry.StageEvalPointer) {
		t.Fatalf("pointer-path events = %+v", snap.Events)
	}

	if err := sys.Compile(); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	tr = telemetry.NewTrace(telemetry.TraceID{})
	ctx = telemetry.ContextWithTrace(context.Background(), tr)
	if _, err := sys.LocalizeIntoContext(ctx, pred, Observation{Features: x}); err != nil {
		t.Fatalf("LocalizeIntoContext: %v", err)
	}
	snap = tr.Snapshot()
	var sawEval, sawScatter bool
	for _, e := range snap.Events {
		switch e.Stage {
		case string(telemetry.StageEvalCompiled):
			sawEval = true
		case string(telemetry.StageJunctionScatter):
			sawScatter = true
			if e.Value != float64(len(net.JunctionIndices())) {
				t.Fatalf("scatter value = %v, want %d", e.Value, len(net.JunctionIndices()))
			}
		}
	}
	if !sawEval || !sawScatter {
		t.Fatalf("compiled-path events = %+v", snap.Events)
	}
}

// TestLocalizeIntoValidatesBuffer pins the buffer-length contract.
func TestLocalizeIntoValidatesBuffer(t *testing.T) {
	net := network.BuildEPANet()
	sys := trainOnNet(t, net, TechniqueLinear, 20)
	dims := len(net.JunctionIndices())
	x := make([]float64, dims)
	short := &fusion.Prediction{Proba: make([]float64, len(net.Nodes)-1)}
	if _, err := sys.LocalizeInto(short, Observation{Features: x}); err == nil {
		t.Fatal("short prediction buffer accepted")
	}
}

// BenchmarkObserve measures the Phase-II observe hot path. The compiled
// variant is the serving configuration and must report 0 B/op.
func BenchmarkObserve(b *testing.B) {
	net := network.BuildEPANet()
	sys := benchSystem(b, net)
	dims := len(net.JunctionIndices())
	x := leakFeatures(rand.New(rand.NewSource(3)), dims, 7)
	pred := &fusion.Prediction{Proba: make([]float64, len(net.Nodes))}

	b.Run("pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.LocalizeInto(pred, Observation{Features: x}); err != nil {
				b.Fatal(err)
			}
		}
	})

	if err := sys.Compile(); err != nil {
		b.Fatalf("Compile: %v", err)
	}
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.LocalizeInto(pred, Observation{Features: x}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The serving configuration with tracing compiled in but this request
	// unsampled: context threading must keep the 0 B/op guarantee.
	ctx := context.Background()
	b.Run("compiled-traced-unsampled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.LocalizeIntoContext(ctx, pred, Observation{Features: x}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchSystem(b *testing.B, net *network.Network) *System {
	b.Helper()
	sys := NewSystem(testFactory(b, net), net, SystemConfig{})
	ds := syntheticDataset(net.JunctionIndices(), 40, rand.New(rand.NewSource(17)))
	if err := sys.TrainOn(ds, ProfileConfig{Technique: TechniqueHybridRSL, Seed: 5}); err != nil {
		b.Fatalf("TrainOn: %v", err)
	}
	return sys
}
