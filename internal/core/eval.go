package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/mlearn"
	"github.com/aquascale/aquascale/internal/social"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// evalMetrics are the Phase-II engine's telemetry handles, bound per
// EvaluateParallel call (so they follow Enable/Disable); all nil no-ops
// when telemetry is off.
type evalMetrics struct {
	scenarios      *telemetry.Counter   // scenarios evaluated
	retries        *telemetry.Counter   // solver re-attempts across scenarios
	skipped        *telemetry.Counter   // scenarios dropped after retry exhaustion
	observeSeconds *telemetry.Histogram // per-scenario observation latency
	workerBusy     *telemetry.Gauge     // summed worker busy seconds
	rate           *telemetry.Gauge     // scenarios/sec of the last run
}

func bindEvalMetrics() evalMetrics {
	reg := telemetry.Default()
	return evalMetrics{
		scenarios:      reg.Counter("core_eval_scenarios_total"),
		retries:        reg.Counter("core_eval_retries_total"),
		skipped:        reg.Counter("core_eval_skipped_total"),
		observeSeconds: reg.Histogram("core_observe_seconds", telemetry.EvalLatencyBuckets()),
		workerBusy:     reg.Gauge("core_eval_worker_busy_seconds_total"),
		rate:           reg.Gauge("core_eval_scenarios_per_second"),
	}
}

// observer bundles the per-worker state of the Phase-II evaluation engine:
// a dataset session (one reused hydraulic solver) and one reused tweet
// generator. Construction is the expensive part Observe pays per call; an
// observer pays it once and is then driven with per-scenario rngs. Not
// safe for concurrent use — the evaluator builds one per worker.
type observer struct {
	session *dataset.Session
	reports *social.Generator
}

// newObserver builds the reusable per-worker observation state.
func (s *System) newObserver() (*observer, error) {
	sess, err := s.factory.NewSession()
	if err != nil {
		return nil, err
	}
	// The generator's own rng is never used: every draw goes through
	// ReportsWith with an explicit per-scenario stream. NewGenerator only
	// needs a non-nil rng to satisfy its contract.
	gen, err := social.NewGenerator(s.net, s.social, rand.New(rand.NewSource(1)))
	if err != nil {
		return nil, err
	}
	return &observer{session: sess, reports: gen}, nil
}

// observeWith simulates one observation using an observer's reused solver
// and tweet generator, returning the solver retries the sample consumed.
// All randomness is drawn from rng in a fixed order (sensor noise, freeze
// detection, reports), so the observation depends only on (scenario,
// options, rng state) — never on which worker runs it.
func (s *System) observeWith(o *observer, sc ColdScenario, opt ObserveOptions, rng *rand.Rand) (Observation, int, error) {
	if opt.ElapsedSlots <= 0 {
		opt.ElapsedSlots = 1
	}
	if opt.GammaM <= 0 {
		opt.GammaM = 30
	}
	sample, err := o.session.FromScenarioAt(sc.Scenario, opt.ElapsedSlots, rng)
	if err != nil {
		return Observation{}, scenarioRetries(err), err
	}
	obs := Observation{Features: sample.Features}
	if opt.Sources.Weather {
		leaking := make(map[int]bool, len(sc.Events))
		for _, e := range sc.Events {
			leaking[e.Node] = true
		}
		detected := make([]bool, len(sc.Frozen))
		for v, frozen := range sc.Frozen {
			if !frozen {
				continue
			}
			if leaking[v] {
				detected[v] = rng.Float64() < freezeDetectRate
			} else {
				detected[v] = rng.Float64() < freezeFalseFireRate
			}
		}
		obs.Frozen = detected
	}
	if opt.Sources.Human {
		reports, err := o.reports.ReportsWith(rng, sc.LeakNodes(), opt.ElapsedSlots)
		if err != nil {
			return Observation{}, sample.Retries, err
		}
		pe := s.social.FalsePositiveRate
		if pe <= 0 {
			pe = 0.3
		}
		obs.Cliques = social.BuildCliques(s.net, reports, opt.GammaM, pe)
	}
	return obs, sample.Retries, nil
}

// scenarioRetries extracts the retry count carried by a
// dataset.ScenarioError (0 for any other error).
func scenarioRetries(err error) int {
	var se *dataset.ScenarioError
	if errors.As(err, &se) {
		return se.Retries
	}
	return 0
}

// scenarioSteps extracts the retry ladder carried by a
// dataset.ScenarioError (nil for any other error).
func scenarioSteps(err error) []hydraulic.RetryStep {
	var se *dataset.ScenarioError
	if errors.As(err, &se) {
		return se.Steps
	}
	return nil
}

// evaluateScenario runs the full Phase-II pipeline on one pre-drawn cold
// scenario with its own rng and returns (Hamming score, human-added count,
// solver retries consumed).
func (s *System) evaluateScenario(o *observer, sc ColdScenario, opt ObserveOptions, met evalMetrics, rng *rand.Rand) (float64, int, int, error) {
	var t0 time.Time
	if met.observeSeconds != nil {
		t0 = time.Now()
	}
	obs, retries, err := s.observeWith(o, sc, opt, rng)
	if met.observeSeconds != nil {
		met.observeSeconds.ObserveDuration(time.Since(t0))
	}
	if err != nil {
		return 0, 0, retries, err
	}
	pred, added, err := s.Localize(obs)
	if err != nil {
		return 0, 0, retries, err
	}
	return mlearn.HammingScore(pred.Set(), sc.Labels(len(s.net.Nodes))), len(added), retries, nil
}

// Evaluate runs Phase II over count cold scenarios and returns the mean
// Hamming score against ground truth. Scenarios are evaluated in parallel
// across runtime.NumCPU() workers; see EvaluateParallel for the
// determinism guarantee and worker-count control.
func (s *System) Evaluate(count int, leakCfg leak.GeneratorConfig, opt ObserveOptions, rng *rand.Rand) (EvalResult, error) {
	return s.EvaluateParallel(count, leakCfg, opt, 0, rng)
}

// EvaluateParallel is Evaluate with an explicit worker count: 0 means
// runtime.NumCPU(), 1 forces the serial path.
//
// The result is bit-identical for every worker count and GOMAXPROCS
// setting at a fixed rng seed — the same guarantee dataset.Factory.Generate
// documents, and by the same construction: scenarios and one noise seed
// per scenario are drawn sequentially from the caller's rng up front, each
// scenario is then evaluated against its own rand.New(seed) stream by a
// worker holding a reused hydraulic solver and tweet generator, and the
// per-scenario scores are reduced in scenario order.
func (s *System) EvaluateParallel(count int, leakCfg leak.GeneratorConfig, opt ObserveOptions, workers int, rng *rand.Rand) (EvalResult, error) {
	return s.EvaluateParallelContext(context.Background(), count, leakCfg, opt, workers, rng)
}

// EvaluateParallelContext is EvaluateParallel with cancellation: ctx is
// observed between scenarios, so a cancelled call returns within roughly
// one scenario's latency. On cancellation it returns the partial result —
// every scenario fully evaluated before the cancel, with Evaluated and
// MeanHamming accounting for exactly those — together with ctx.Err().
// An uncancelled call is bit-identical to EvaluateParallel.
func (s *System) EvaluateParallelContext(ctx context.Context, count int, leakCfg leak.GeneratorConfig, opt ObserveOptions, workers int, rng *rand.Rand) (EvalResult, error) {
	if s.Profile() == nil {
		return EvalResult{}, fmt.Errorf("core: system not trained")
	}
	if count <= 0 {
		return EvalResult{}, fmt.Errorf("core: non-positive scenario count")
	}
	if rng == nil {
		return EvalResult{}, fmt.Errorf("core: nil rng")
	}
	met := bindEvalMetrics()
	span := telemetry.Default().StartSpan("core_evaluate_parallel")
	wallStart := time.Now()

	// Serial phase: pre-draw every random decision that spans scenarios so
	// the outcome cannot depend on worker scheduling.
	scenarios := make([]ColdScenario, count)
	for i := range scenarios {
		if err := ctx.Err(); err != nil {
			return EvalResult{Scenarios: count}, err
		}
		sc, err := s.GenerateColdScenario(leakCfg, rng)
		if err != nil {
			return EvalResult{}, err
		}
		scenarios[i] = sc
	}
	seeds := make([]int64, count)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}

	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > count {
		workers = count
	}
	// Per-worker observers are built before spawning so a solver or
	// generator construction failure is one deterministic error.
	observers := make([]*observer, workers)
	for w := range observers {
		o, err := s.newObserver()
		if err != nil {
			return EvalResult{}, err
		}
		observers[w] = o
	}

	scores := make([]float64, count)
	added := make([]int, count)
	retries := make([]int, count)
	errs := make([]error, count)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(o *observer) {
			defer wg.Done()
			var busy time.Duration
			timed := met.workerBusy != nil
			for i := range work {
				var t0 time.Time
				if timed {
					t0 = time.Now()
				}
				scores[i], added[i], retries[i], errs[i] =
					s.evaluateScenario(o, scenarios[i], opt, met, rand.New(rand.NewSource(seeds[i])))
				if timed {
					busy += time.Since(t0)
				}
				met.scenarios.Inc()
			}
			met.workerBusy.Add(busy.Seconds())
		}(observers[w])
	}
	// Dispatch observes ctx between scenarios: on cancellation no further
	// scenario starts, in-flight ones finish, and the reduction below only
	// covers what was dispatched.
	dispatched := count
dispatch:
	for i := 0; i < count; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			dispatched = i
			break dispatch
		}
	}
	close(work)
	wg.Wait()

	// Reduce in scenario order so errors, the skip report, and the float
	// sum are all order-stable regardless of worker scheduling. A scenario
	// whose solve still fails after retries is skipped and recorded unless
	// FailFast restores the historical first-error-aborts behavior; any
	// error other than non-convergence aborts either way.
	total, humanAdded, totalRetries := 0.0, 0, 0
	var skipped []SkippedScenario
	for i, err := range errs[:dispatched] {
		totalRetries += retries[i]
		if err == nil {
			total += scores[i]
			humanAdded += added[i]
			continue
		}
		if opt.FailFast || !errors.Is(err, hydraulic.ErrNotConverged) {
			return EvalResult{}, err
		}
		skipped = append(skipped, SkippedScenario{
			Index:   i,
			Err:     err,
			Retries: retries[i],
			Trace:   dataset.RetryTrace(fmt.Sprintf("scenario-%d", i), scenarioSteps(err), err),
		})
	}
	met.retries.Add(int64(totalRetries))
	met.skipped.Add(int64(len(skipped)))
	evaluated := dispatched - len(skipped)
	mean := 0.0
	if evaluated > 0 {
		mean = total / float64(evaluated)
	}
	res := EvalResult{
		MeanHamming: mean,
		Scenarios:   count,
		Evaluated:   evaluated,
		HumanAdded:  humanAdded,
		Retries:     totalRetries,
		Skipped:     skipped,
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		span.End()
		return res, ctxErr
	}
	if evaluated == 0 {
		return EvalResult{}, fmt.Errorf("core: all %d scenarios failed (first: %w)", count, skipped[0].Err)
	}
	if elapsed := time.Since(wallStart); elapsed > 0 {
		met.rate.Set(float64(count) / elapsed.Seconds())
	}
	span.End()
	return res, nil
}
