package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// tinyBed caches one trained test-network system for the context and
// concurrency tests — built once per binary because the baseline EPS and
// training solves dominate the cost.
var tinyBed struct {
	once sync.Once
	err  error
	sys  *System
}

// tinySystem returns a shared trained system on the small test network.
// Tests that only read (Localize, Evaluate*) may share it; tests that
// need an untrained or mutated system must build their own.
func tinySystem() (*System, error) {
	tinyBed.once.Do(func() {
		net := network.BuildTestNet()
		base, err := hydraulic.RunEPS(net, hydraulic.EPSOptions{Duration: 2 * time.Hour, Step: time.Hour}, nil)
		if err != nil {
			tinyBed.err = fmt.Errorf("baseline EPS: %w", err)
			return
		}
		placer, err := sensor.NewPlacer(net, base)
		if err != nil {
			tinyBed.err = err
			return
		}
		sensors, err := placer.KMedoids(5, rand.New(rand.NewSource(2)))
		if err != nil {
			tinyBed.err = err
			return
		}
		factory, err := dataset.NewFactory(net, sensors, dataset.Config{
			Noise: sensor.DefaultNoise,
			Leaks: leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2},
		})
		if err != nil {
			tinyBed.err = err
			return
		}
		sys := NewSystem(factory, net, SystemConfig{})
		if err := sys.Train(40, ProfileConfig{Technique: TechniqueLinear, Seed: 5},
			rand.New(rand.NewSource(3))); err != nil {
			tinyBed.err = fmt.Errorf("train: %w", err)
			return
		}
		tinyBed.sys = sys
	})
	return tinyBed.sys, tinyBed.err
}

func TestEvaluateParallelContextPreCancelled(t *testing.T) {
	sys, err := tinySystem()
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sys.EvaluateParallelContext(ctx, 10,
		leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2}, ObserveOptions{}, 2,
		rand.New(rand.NewSource(1)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Scenarios != 10 {
		t.Fatalf("Scenarios = %d, want 10 (requested count)", res.Scenarios)
	}
	if res.Evaluated != 0 {
		t.Fatalf("Evaluated = %d before any dispatch", res.Evaluated)
	}
}

func TestEvaluateParallelContextMidRunCancel(t *testing.T) {
	sys, err := tinySystem()
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	// A single worker over many scenarios guarantees the run outlives the
	// cancel timer even on a fast machine, so the cancel lands mid-run.
	const count = 2000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	res, err := sys.EvaluateParallelContext(ctx, count,
		leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2}, ObserveOptions{}, 1,
		rand.New(rand.NewSource(7)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Scenarios != count {
		t.Fatalf("Scenarios = %d, want %d", res.Scenarios, count)
	}
	// Partial accounting: only fully evaluated scenarios count, and the
	// cancel stopped the run before it could finish.
	if res.Evaluated >= count {
		t.Fatalf("Evaluated = %d, want < %d after cancel", res.Evaluated, count)
	}
	if res.MeanHamming < 0 || res.MeanHamming > 1 {
		t.Fatalf("MeanHamming = %v out of [0,1]", res.MeanHamming)
	}
}

func TestEvaluateParallelContextBackgroundMatchesLegacy(t *testing.T) {
	sys, err := tinySystem()
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	leakCfg := leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2}
	opt := ObserveOptions{Sources: Sources{Weather: true, Human: true}, ElapsedSlots: 2}
	legacy, err := sys.EvaluateParallel(12, leakCfg, opt, 3, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("EvaluateParallel: %v", err)
	}
	viaCtx, err := sys.EvaluateParallelContext(context.Background(), 12, leakCfg, opt, 3,
		rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("EvaluateParallelContext: %v", err)
	}
	if legacy.MeanHamming != viaCtx.MeanHamming || legacy.Evaluated != viaCtx.Evaluated ||
		legacy.HumanAdded != viaCtx.HumanAdded || legacy.Retries != viaCtx.Retries {
		t.Fatalf("background context diverged from legacy: %+v vs %+v", viaCtx, legacy)
	}
}

func TestTrainContextCancelledLeavesProfileUntouched(t *testing.T) {
	trained, err := tinySystem()
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	// Fresh untrained system sharing the factory: a cancelled TrainContext
	// must return ctx.Err() and never install a partial profile.
	sys := NewSystem(trained.Factory(), trained.Network(), SystemConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = sys.TrainContext(ctx, 40, ProfileConfig{Technique: TechniqueLinear, Seed: 5},
		rand.New(rand.NewSource(3)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sys.Profile() != nil {
		t.Fatal("cancelled TrainContext installed a profile")
	}
}

// TestConcurrentLocalizeDuringSetProfile exercises the lock-free profile
// hot-swap: many goroutines localize against one shared System while
// another goroutine keeps swapping the (identical) profile in. Run under
// -race this proves Localize reads a coherent snapshot.
func TestConcurrentLocalizeDuringSetProfile(t *testing.T) {
	sys, err := tinySystem()
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	profile := sys.Profile()
	want, _, err := sys.Localize(Observation{Features: make([]float64, sys.Factory().SensorCount())})
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}

	const goroutines, perG = 16, 25
	errCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			obs := Observation{Features: make([]float64, sys.Factory().SensorCount())}
			for i := 0; i < perG; i++ {
				pred, _, err := sys.Localize(obs)
				if err != nil {
					errCh <- err
					return
				}
				for v := range want.Proba {
					if pred.Proba[v] != want.Proba[v] {
						errCh <- fmt.Errorf("proba[%d] = %v, want %v", v, pred.Proba[v], want.Proba[v])
						return
					}
				}
			}
		}()
	}
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for i := 0; i < 200; i++ {
			if err := sys.SetProfile(profile); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	<-swapDone
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
