package core

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/faults"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// faultySystem builds a trained system whose factory injects forced solver
// non-convergence during evaluation. The profile is trained on a clean
// dataset (so even rate-1 fault configs leave a usable system) and the
// fault-injecting factory only drives observation.
func faultySystem(t testing.TB, fcfg faults.Config, retries int) *System {
	t.Helper()
	net := network.BuildEPANet()
	base, err := hydraulic.RunEPS(net, hydraulic.EPSOptions{Duration: 4 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		t.Fatalf("baseline EPS: %v", err)
	}
	placer, err := sensor.NewPlacer(net, base)
	if err != nil {
		t.Fatalf("NewPlacer: %v", err)
	}
	sensors, err := placer.KMedoids(12, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("KMedoids: %v", err)
	}
	leaks := leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2}
	clean, err := dataset.NewFactory(net, sensors, dataset.Config{
		Noise: sensor.DefaultNoise,
		Leaks: leaks,
	})
	if err != nil {
		t.Fatalf("NewFactory (clean): %v", err)
	}
	ds, err := clean.Generate(60, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	faulty, err := dataset.NewFactory(net, sensors, dataset.Config{
		Noise:  sensor.DefaultNoise,
		Leaks:  leaks,
		Retry:  hydraulic.RetryPolicy{MaxRetries: retries},
		Faults: fcfg,
	})
	if err != nil {
		t.Fatalf("NewFactory (faulty): %v", err)
	}
	sys := NewSystem(faulty, net, SystemConfig{})
	if err := sys.TrainOn(ds, ProfileConfig{Technique: "linear", Seed: 5}); err != nil {
		t.Fatalf("TrainOn: %v", err)
	}
	return sys
}

// TestEvaluateParallelSkipsAndAccounts is the issue's acceptance
// criterion: with ~10% forced non-convergence past the retry budget over
// 200 scenarios, EvaluateParallel completes, reports every skipped
// scenario with its error and retry count, and is bit-identical for
// workers 1, 4 and NumCPU.
func TestEvaluateParallelSkipsAndAccounts(t *testing.T) {
	// Forced failure depth 2 vs budget 1: every hit scenario consumes its
	// budget and skips.
	sys := faultySystem(t, faults.Config{SolverFail: 0.1, SolverFailAttempts: 2}, 1)
	leakCfg := leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2}
	opt := ObserveOptions{ElapsedSlots: 1}
	const count = 200
	run := func(workers int) EvalResult {
		t.Helper()
		res, err := sys.EvaluateParallel(count, leakCfg, opt, workers, rand.New(rand.NewSource(41)))
		if err != nil {
			t.Fatalf("EvaluateParallel(workers=%d): %v", workers, err)
		}
		return res
	}

	serial := run(1)
	if serial.Scenarios != count {
		t.Fatalf("scenarios = %d, want %d", serial.Scenarios, count)
	}
	if len(serial.Skipped) == 0 {
		t.Fatal("expected skipped scenarios at a 10% forced-failure rate")
	}
	if serial.Evaluated != count-len(serial.Skipped) {
		t.Fatalf("evaluated = %d, want %d - %d", serial.Evaluated, count, len(serial.Skipped))
	}
	if serial.Retries < len(serial.Skipped) {
		t.Fatalf("retries (%d) below skip count (%d): every skip consumed the budget", serial.Retries, len(serial.Skipped))
	}
	prev := -1
	for _, sk := range serial.Skipped {
		if sk.Index <= prev || sk.Index >= count {
			t.Fatalf("skip indices out of order or range: %+v", serial.Skipped)
		}
		prev = sk.Index
		if sk.Err == nil || !errors.Is(sk.Err, hydraulic.ErrNotConverged) {
			t.Fatalf("skipped scenario %d: err %v is not ErrNotConverged", sk.Index, sk.Err)
		}
		if sk.Retries != 1 {
			t.Fatalf("skipped scenario %d consumed %d retries, want the full budget 1", sk.Index, sk.Retries)
		}
	}

	for _, workers := range []int{4, runtime.NumCPU()} {
		par := run(workers)
		// Skipped carries error values; compare the report field-wise and
		// the rest via the scalar fields.
		if serial.MeanHamming != par.MeanHamming || serial.Evaluated != par.Evaluated ||
			serial.HumanAdded != par.HumanAdded || serial.Retries != par.Retries {
			t.Fatalf("workers=%d diverged: serial=%+v parallel=%+v", workers, serial, par)
		}
		if len(serial.Skipped) != len(par.Skipped) {
			t.Fatalf("workers=%d skip counts diverged: %d vs %d", workers, len(serial.Skipped), len(par.Skipped))
		}
		for i := range serial.Skipped {
			if serial.Skipped[i].Index != par.Skipped[i].Index ||
				serial.Skipped[i].Retries != par.Skipped[i].Retries ||
				serial.Skipped[i].Err.Error() != par.Skipped[i].Err.Error() {
				t.Fatalf("workers=%d skip report diverged at %d: %+v vs %+v",
					workers, i, serial.Skipped[i], par.Skipped[i])
			}
		}
	}
}

// TestEvaluateParallelFailFast pins the opt-in historical behavior: the
// first failure aborts the evaluation.
func TestEvaluateParallelFailFast(t *testing.T) {
	sys := faultySystem(t, faults.Config{SolverFail: 0.3, SolverFailAttempts: 1}, 0)
	leakCfg := leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2}
	opt := ObserveOptions{ElapsedSlots: 1, FailFast: true}
	_, err := sys.EvaluateParallel(40, leakCfg, opt, 2, rand.New(rand.NewSource(41)))
	if err == nil {
		t.Fatal("FailFast should abort on the first failed scenario")
	}
	if !errors.Is(err, hydraulic.ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
}

// TestEvaluateParallelRecoversWithBudget checks that a retry budget at the
// forced-failure depth recovers every hit scenario: nothing skips and the
// retry total is visible in the result.
func TestEvaluateParallelRecoversWithBudget(t *testing.T) {
	sys := faultySystem(t, faults.Config{SolverFail: 0.2, SolverFailAttempts: 1}, 1)
	leakCfg := leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2}
	res, err := sys.EvaluateParallel(60, leakCfg, ObserveOptions{ElapsedSlots: 1}, 2, rand.New(rand.NewSource(43)))
	if err != nil {
		t.Fatalf("EvaluateParallel: %v", err)
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("expected no skips with budget >= failure depth, got %d", len(res.Skipped))
	}
	if res.Evaluated != 60 {
		t.Fatalf("evaluated = %d, want 60", res.Evaluated)
	}
	if res.Retries == 0 {
		t.Fatal("expected recorded retries at a 20% forced-failure rate")
	}
}

// TestEvaluateParallelAllSkippedErrors checks the degenerate case.
func TestEvaluateParallelAllSkippedErrors(t *testing.T) {
	sys := faultySystem(t, faults.Config{SolverFail: 1, SolverFailAttempts: 1}, 0)
	leakCfg := leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2}
	if _, err := sys.EvaluateParallel(6, leakCfg, ObserveOptions{ElapsedSlots: 1}, 2, rand.New(rand.NewSource(47))); err == nil {
		t.Fatal("expected an error when every scenario is skipped")
	}
}
