package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/aquascale/aquascale/internal/network"
)

func TestProfileSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	junctions := []int{1, 3, 4}
	ds := syntheticDataset(junctions, 120, rng)
	p, err := TrainProfile(ds, 6, ProfileConfig{Technique: "gb", Seed: 3})
	if err != nil {
		t.Fatalf("TrainProfile: %v", err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadProfile(&buf)
	if err != nil {
		t.Fatalf("LoadProfile: %v", err)
	}
	if loaded.Technique() != "gb" {
		t.Fatalf("technique = %q", loaded.Technique())
	}
	probe := []float64{-2, 0.1, 0}
	want, err := p.PredictProba(probe)
	if err != nil {
		t.Fatalf("PredictProba: %v", err)
	}
	got, err := loaded.PredictProba(probe)
	if err != nil {
		t.Fatalf("loaded PredictProba: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("length drift: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("node %d drift: %v vs %v", i, want[i], got[i])
		}
	}
}

func TestLoadProfileCorrupt(t *testing.T) {
	if _, err := LoadProfile(bytes.NewReader([]byte("not a profile"))); err == nil {
		t.Fatal("garbage input should error")
	}
}

func TestSetProfile(t *testing.T) {
	net := network.BuildEPANet()
	sys := NewSystem(testFactory(t, net), net, SystemConfig{})
	if err := sys.SetProfile(nil); err == nil {
		t.Fatal("nil profile should error")
	}
	// Profile for a different node count must be rejected.
	rng := rand.New(rand.NewSource(2))
	ds := syntheticDataset([]int{0, 1}, 50, rng)
	small, err := TrainProfile(ds, 2, ProfileConfig{Technique: "linear"})
	if err != nil {
		t.Fatalf("TrainProfile: %v", err)
	}
	if err := sys.SetProfile(small); err == nil {
		t.Fatal("node-count mismatch should error")
	}
	// A matching profile installs and serves Localize.
	junctions := net.JunctionIndices()[:4]
	ds2 := syntheticDataset(junctions, 60, rng)
	full, err := TrainProfile(ds2, len(net.Nodes), ProfileConfig{Technique: "linear"})
	if err != nil {
		t.Fatalf("TrainProfile: %v", err)
	}
	if err := sys.SetProfile(full); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	if sys.Profile() != full {
		t.Fatal("profile not installed")
	}
	if _, _, err := sys.Localize(Observation{Features: []float64{0, 0, 0, 0}}); err != nil {
		t.Fatalf("Localize with installed profile: %v", err)
	}
}
