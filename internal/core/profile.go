// Package core is the AquaSCALE engine: it wires the hydraulic substrate,
// the IoT/weather/human information sources and the plug-and-play analytic
// suite into the paper's two-phase workflow — offline profile training
// (Phase I, Algorithm 1) and online multi-source leak localization
// (Phase II, Algorithm 2).
package core

import (
	"context"
	"fmt"

	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/mlearn"
)

// ProfileConfig selects the Phase-I learning technique.
type ProfileConfig struct {
	// Technique selects the classifier (TechniqueLinear … TechniqueHybridRSL,
	// or any name registered with mlearn.Register). The zero value means
	// TechniqueHybridRSL, the paper's best performer.
	Technique Technique

	// Seed drives all stochastic training.
	Seed int64
}

// Profile is the paper's offline profile model f = {f_v : v ∈ V}: one
// binary classifier per junction, predicting leak probability from IoT
// reading deltas.
type Profile struct {
	technique Technique
	model     *mlearn.MultiOutput
	junctions []int // label column → node index
	nodeCount int
}

// TrainProfile fits the profile on a Phase-I dataset (Algorithm 1).
// nodeCount is the network's |V|; predictions are indexed by node with
// zero probability at fixed-grade nodes (they cannot leak). It is
// shorthand for TrainProfileContext with context.Background().
func TrainProfile(ds *dataset.Dataset, nodeCount int, cfg ProfileConfig) (*Profile, error) {
	return TrainProfileContext(context.Background(), ds, nodeCount, cfg)
}

// TrainProfileContext is TrainProfile with cancellation: ctx is checked
// between per-junction classifier dispatches, in-flight fits finish, no
// profile is returned, and the error wraps ctx.Err().
func TrainProfileContext(ctx context.Context, ds *dataset.Dataset, nodeCount int, cfg ProfileConfig) (*Profile, error) {
	if cfg.Technique == "" {
		cfg.Technique = TechniqueHybridRSL
	}
	if len(ds.Samples) == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if len(ds.Junctions) == 0 {
		return nil, fmt.Errorf("core: dataset has no junction columns")
	}
	for _, nodeIdx := range ds.Junctions {
		if nodeIdx < 0 || nodeIdx >= nodeCount {
			return nil, fmt.Errorf("core: junction node %d outside node count %d", nodeIdx, nodeCount)
		}
	}
	factory := func(seed int64) mlearn.Classifier {
		c, err := mlearn.NewByName(string(cfg.Technique), seed)
		if err != nil {
			// Unreachable: the name is validated below before training.
			panic(err)
		}
		return c
	}
	if _, err := ParseTechnique(string(cfg.Technique)); err != nil {
		return nil, err
	}
	mo := mlearn.NewMultiOutput(factory, cfg.Seed)
	if err := mo.FitContext(ctx, ds.X(), ds.Y()); err != nil {
		return nil, fmt.Errorf("core: profile training: %w", err)
	}
	return &Profile{
		technique: cfg.Technique,
		model:     mo,
		junctions: append([]int(nil), ds.Junctions...),
		nodeCount: nodeCount,
	}, nil
}

// Technique returns the technique the profile was trained with.
func (p *Profile) Technique() Technique { return p.technique }

// PredictProba returns per-node leak probabilities P = {p_v(1)} for one
// observation's features. Fixed-grade nodes get probability 0.
func (p *Profile) PredictProba(features []float64) ([]float64, error) {
	cols, err := p.model.PredictProba(features)
	if err != nil {
		return nil, err
	}
	out := make([]float64, p.nodeCount)
	for col, nodeIdx := range p.junctions {
		out[nodeIdx] = cols[col]
	}
	return out, nil
}

// Predict returns the per-node leak set S (0/1 per node).
func (p *Profile) Predict(features []float64) ([]int, error) {
	proba, err := p.PredictProba(features)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(proba))
	for v, pv := range proba {
		if pv > 0.5 {
			out[v] = 1
		}
	}
	return out, nil
}
