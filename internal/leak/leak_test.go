package leak

import (
	"math/rand"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/network"
)

func newGen(t *testing.T, cfg GeneratorConfig, seed int64) (*Generator, *network.Network) {
	t.Helper()
	n := network.BuildEPANet()
	g, err := NewGenerator(n, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g, n
}

func TestGeneratorDefaults(t *testing.T) {
	g, n := newGen(t, GeneratorConfig{}, 1)
	counts := make(map[int]int)
	for i := 0; i < 3000; i++ {
		s := g.Next()
		if len(s.Events) < 1 || len(s.Events) > 5 {
			t.Fatalf("event count %d outside U(1,5)", len(s.Events))
		}
		counts[len(s.Events)]++
		seen := make(map[int]bool)
		for _, e := range s.Events {
			if n.Nodes[e.Node].Type != network.Junction {
				t.Fatalf("leak at non-junction node %d", e.Node)
			}
			if seen[e.Node] {
				t.Fatal("duplicate leak location in one scenario")
			}
			seen[e.Node] = true
			if e.Size < 3e-4 || e.Size > 3e-3 {
				t.Fatalf("size %v outside default range", e.Size)
			}
		}
	}
	// Every count 1..5 should occur under a uniform draw over 3000 trials.
	for k := 1; k <= 5; k++ {
		if counts[k] == 0 {
			t.Fatalf("event count %d never drawn", k)
		}
	}
}

func TestGeneratorFixedCount(t *testing.T) {
	g, _ := newGen(t, GeneratorConfig{MinEvents: 3, MaxEvents: 3}, 2)
	for i := 0; i < 100; i++ {
		if got := len(g.Next().Events); got != 3 {
			t.Fatalf("event count = %d, want 3", got)
		}
	}
}

func TestGeneratorStartTime(t *testing.T) {
	start := 4 * time.Hour
	g, _ := newGen(t, GeneratorConfig{Start: start}, 3)
	s := g.Next()
	for _, e := range s.Events {
		if e.Start != start {
			t.Fatalf("start = %v, want %v", e.Start, start)
		}
	}
	sched := s.ScheduledEmitters()
	if len(sched) != len(s.Events) || sched[0].Start != start {
		t.Fatalf("ScheduledEmitters = %+v", sched)
	}
}

func TestGeneratorValidation(t *testing.T) {
	n := network.BuildEPANet()
	rng := rand.New(rand.NewSource(1))
	if _, err := NewGenerator(n, GeneratorConfig{MinEvents: 5, MaxEvents: 2}, rng); err == nil {
		t.Fatal("min > max events should error")
	}
	if _, err := NewGenerator(n, GeneratorConfig{MinSize: 1, MaxSize: 0.1}, rng); err == nil {
		t.Fatal("min > max size should error")
	}
	if _, err := NewGenerator(n, GeneratorConfig{}, nil); err == nil {
		t.Fatal("nil rng should error")
	}
	tiny := network.BuildTestNet() // 7 junctions
	if _, err := NewGenerator(tiny, GeneratorConfig{MaxEvents: 50}, rng); err == nil {
		t.Fatal("MaxEvents above junction count should error")
	}
}

func TestScenarioLabels(t *testing.T) {
	s := Scenario{Events: []Event{{Node: 2, Size: 1e-3}, {Node: 5, Size: 2e-3}}}
	y := s.Labels(8)
	for i, v := range y {
		want := 0
		if i == 2 || i == 5 {
			want = 1
		}
		if v != want {
			t.Fatalf("labels = %v", y)
		}
	}
	// Out-of-range nodes are ignored rather than panicking.
	bad := Scenario{Events: []Event{{Node: 99}}}
	if got := bad.Labels(4); got[0] != 0 {
		t.Fatalf("labels = %v", got)
	}
}

func TestScenarioLeakNodesDedup(t *testing.T) {
	s := Scenario{Events: []Event{{Node: 3}, {Node: 3}, {Node: 1}}}
	nodes := s.LeakNodes()
	if len(nodes) != 2 {
		t.Fatalf("LeakNodes = %v", nodes)
	}
}

func TestScenarioEmitters(t *testing.T) {
	s := Scenario{Events: []Event{{Node: 4, Size: 1.5e-3}}}
	em := s.Emitters()
	if len(em) != 1 || em[0].Node != 4 || em[0].Coeff != 1.5e-3 {
		t.Fatalf("Emitters = %+v", em)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, _ := newGen(t, GeneratorConfig{}, 42)
	g2, _ := newGen(t, GeneratorConfig{}, 42)
	for i := 0; i < 50; i++ {
		a, b := g1.Next(), g2.Next()
		if len(a.Events) != len(b.Events) {
			t.Fatal("non-deterministic scenario stream")
		}
		for k := range a.Events {
			if a.Events[k] != b.Events[k] {
				t.Fatal("non-deterministic event")
			}
		}
	}
}

func TestBatch(t *testing.T) {
	g, _ := newGen(t, GeneratorConfig{}, 9)
	batch := g.Batch(17)
	if len(batch) != 17 {
		t.Fatalf("batch size = %d", len(batch))
	}
}
