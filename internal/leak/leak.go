// Package leak models pipe failure events and generates the randomized
// failure scenarios used for profile training and evaluation.
//
// A leak event e = (l, s, t) is identified by its location (a node — the
// paper assumes failures at pipe joints), its size (the effective leak area
// EC in Q = EC·p^β), and its starting time slot. A scenario is a set of
// one or more concurrent events: the paper draws the event count from
// U(1, 5) with arbitrary locations and sizes but a shared start time,
// because concurrent failures are the hard case (they cannot be separated
// in the time series).
package leak

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/network"
)

// Event is one pipe failure e = (l, s, t).
type Event struct {
	// Node is the leak location e.l (node index into the network).
	Node int

	// Size is the effective leak area EC (e.s) in m³/s per m^β.
	Size float64

	// Start is the starting time slot e.t.
	Start time.Duration
}

// Scenario is a set of concurrent leak events plus the ground-truth label
// vector over nodes.
type Scenario struct {
	Events []Event
}

// Labels returns the per-node ground truth: 1 at leak locations, 0
// elsewhere.
func (s Scenario) Labels(nodeCount int) []int {
	y := make([]int, nodeCount)
	for _, e := range s.Events {
		if e.Node >= 0 && e.Node < nodeCount {
			y[e.Node] = 1
		}
	}
	return y
}

// LeakNodes returns the distinct leak locations.
func (s Scenario) LeakNodes() []int {
	seen := make(map[int]bool, len(s.Events))
	var out []int
	for _, e := range s.Events {
		if !seen[e.Node] {
			seen[e.Node] = true
			out = append(out, e.Node)
		}
	}
	return out
}

// Emitters converts the scenario to solver emitters (ignoring start times;
// use ScheduledEmitters for EPS runs).
func (s Scenario) Emitters() []hydraulic.Emitter {
	out := make([]hydraulic.Emitter, 0, len(s.Events))
	for _, e := range s.Events {
		out = append(out, hydraulic.Emitter{Node: e.Node, Coeff: e.Size})
	}
	return out
}

// ScheduledEmitters converts the scenario for extended-period simulation.
func (s Scenario) ScheduledEmitters() []hydraulic.ScheduledEmitter {
	out := make([]hydraulic.ScheduledEmitter, 0, len(s.Events))
	for _, e := range s.Events {
		out = append(out, hydraulic.ScheduledEmitter{Node: e.Node, Coeff: e.Size, Start: e.Start})
	}
	return out
}

// GeneratorConfig controls random scenario generation.
type GeneratorConfig struct {
	// MinEvents and MaxEvents bound the uniform event count U(min, max).
	// The paper uses U(1, 5). Zero values mean 1 and 5.
	MinEvents int
	MaxEvents int

	// MinSize and MaxSize bound the log-uniform effective leak area EC.
	// Zero values mean [3e-4, 3e-3] — leaks of roughly 2–20 L/s at typical
	// 40 m service pressure, detectable but not dominating the network.
	MinSize float64
	MaxSize float64

	// Start is the shared starting time slot of all events in a scenario
	// (concurrent failures).
	Start time.Duration
}

func (c GeneratorConfig) withDefaults() GeneratorConfig {
	if c.MinEvents <= 0 {
		c.MinEvents = 1
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 5
	}
	if c.MinSize <= 0 {
		c.MinSize = 3e-4
	}
	if c.MaxSize <= 0 {
		c.MaxSize = 3e-3
	}
	return c
}

// Generator draws random leak scenarios over a network's junctions.
type Generator struct {
	cfg       GeneratorConfig
	junctions []int
	rng       *rand.Rand
}

// NewGenerator builds a generator for the network. The rng drives all
// randomness so scenario streams are reproducible.
func NewGenerator(net *network.Network, cfg GeneratorConfig, rng *rand.Rand) (*Generator, error) {
	cfg = cfg.withDefaults()
	if cfg.MinEvents > cfg.MaxEvents {
		return nil, fmt.Errorf("leak: MinEvents %d > MaxEvents %d", cfg.MinEvents, cfg.MaxEvents)
	}
	if cfg.MinSize > cfg.MaxSize {
		return nil, fmt.Errorf("leak: MinSize %v > MaxSize %v", cfg.MinSize, cfg.MaxSize)
	}
	junctions := net.JunctionIndices()
	if len(junctions) < cfg.MaxEvents {
		return nil, fmt.Errorf("leak: network has %d junctions, fewer than MaxEvents %d",
			len(junctions), cfg.MaxEvents)
	}
	if rng == nil {
		return nil, fmt.Errorf("leak: nil rng")
	}
	return &Generator{cfg: cfg, junctions: junctions, rng: rng}, nil
}

// Next draws one scenario: the event count is uniform in
// [MinEvents, MaxEvents], locations are distinct random junctions, sizes
// are log-uniform in [MinSize, MaxSize], and all events share the
// configured start time.
func (g *Generator) Next() Scenario {
	count := g.cfg.MinEvents
	if span := g.cfg.MaxEvents - g.cfg.MinEvents; span > 0 {
		count += g.rng.Intn(span + 1)
	}
	// Distinct locations via partial Fisher-Yates over a copy.
	perm := g.rng.Perm(len(g.junctions))[:count]
	events := make([]Event, count)
	logMin, logMax := math.Log(g.cfg.MinSize), math.Log(g.cfg.MaxSize)
	for i, pi := range perm {
		size := math.Exp(logMin + g.rng.Float64()*(logMax-logMin))
		events[i] = Event{
			Node:  g.junctions[pi],
			Size:  size,
			Start: g.cfg.Start,
		}
	}
	return Scenario{Events: events}
}

// Batch draws n scenarios.
func (g *Generator) Batch(n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
