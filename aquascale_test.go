package aquascale_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/aquascale/aquascale"
)

// These tests exercise the public facade end to end the way a downstream
// user would, complementing the internal packages' unit tests.

func TestPublicNetworkRoundTrip(t *testing.T) {
	net := aquascale.BuildEPANet()
	if net.JunctionCount() != 91 || net.PipeCount() != 118 {
		t.Fatalf("EPA-NET counts: %d junctions, %d pipes", net.JunctionCount(), net.PipeCount())
	}
	var buf bytes.Buffer
	if err := aquascale.WriteINP(&buf, net); err != nil {
		t.Fatalf("WriteINP: %v", err)
	}
	got, err := aquascale.ReadINP(&buf)
	if err != nil {
		t.Fatalf("ReadINP: %v", err)
	}
	if len(got.Nodes) != len(net.Nodes) {
		t.Fatalf("round trip lost nodes: %d vs %d", len(got.Nodes), len(net.Nodes))
	}
}

func TestPublicHydraulics(t *testing.T) {
	net := aquascale.BuildTestNet()
	solver, err := aquascale.NewSolver(net, aquascale.SolverOptions{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	j5, _ := net.NodeIndex("J5")
	res, err := solver.SolveSteady(0, []aquascale.Emitter{{Node: j5, Coeff: 1e-3}}, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	if res.EmitterFlow[j5] <= 0 {
		t.Fatal("leak does not discharge")
	}
	ts, err := aquascale.RunEPS(net, aquascale.EPSOptions{Duration: time.Hour}, nil)
	if err != nil {
		t.Fatalf("RunEPS: %v", err)
	}
	if ts.Steps() != 5 {
		t.Fatalf("EPS steps = %d, want 5", ts.Steps())
	}
}

func TestPublicTwoPhaseWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a profile")
	}
	net := aquascale.BuildEPANet()
	baseline, err := aquascale.RunEPS(net, aquascale.EPSOptions{Duration: 4 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		t.Fatalf("RunEPS: %v", err)
	}
	placer, err := aquascale.NewPlacer(net, baseline)
	if err != nil {
		t.Fatalf("NewPlacer: %v", err)
	}
	sensors, err := placer.KMedoids(50, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("KMedoids: %v", err)
	}
	factory, err := aquascale.NewFactory(net, sensors, aquascale.DatasetConfig{
		Noise: aquascale.DefaultSensorNoise,
		Leaks: aquascale.LeakGeneratorConfig{MinEvents: 1, MaxEvents: 2},
	})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	sys := aquascale.NewSystem(factory, net, aquascale.SystemConfig{})
	if err := sys.Train(150, aquascale.ProfileConfig{Technique: "svm", Seed: 7},
		rand.New(rand.NewSource(3))); err != nil {
		t.Fatalf("Train: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	sc, err := sys.GenerateColdScenario(aquascale.LeakGeneratorConfig{MinEvents: 1, MaxEvents: 2}, rng)
	if err != nil {
		t.Fatalf("GenerateColdScenario: %v", err)
	}
	obs, err := sys.Observe(sc, aquascale.ObserveOptions{
		Sources:      aquascale.Sources{Weather: true, Human: true},
		ElapsedSlots: 4,
		GammaM:       60,
	}, rng)
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	pred, _, err := sys.Localize(obs)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	score := aquascale.HammingScore(pred.Set(), sc.Labels(len(net.Nodes)))
	if score < 0 || score > 1 {
		t.Fatalf("score = %v", score)
	}
}

func TestPublicFusionHelpers(t *testing.T) {
	if got := aquascale.TweetConfidence(0.3, 2); got < 0.9 || got > 0.92 {
		t.Fatalf("TweetConfidence = %v", got)
	}
	if got := aquascale.FuseOdds(0.6, 0.6); got <= 0.6 {
		t.Fatalf("FuseOdds = %v", got)
	}
	names := aquascale.ClassifierNames()
	joined := strings.Join(names, ",")
	for _, want := range []string{"hybrid-rsl", "rf", "svm"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("classifier %q missing from %v", want, names)
		}
	}
}

func TestPublicFlood(t *testing.T) {
	net := aquascale.BuildTestNet()
	dem, err := aquascale.DEMFromNetwork(net, 50, 2)
	if err != nil {
		t.Fatalf("DEMFromNetwork: %v", err)
	}
	dem.AddRoughness(0.2, 9)
	res, err := aquascale.SimulateFlood(dem, []aquascale.FloodSource{{
		X: net.Nodes[2].X, Y: net.Nodes[2].Y,
		Rate: func(time.Duration) float64 { return 0.05 },
	}}, aquascale.FloodConfig{Duration: 10 * time.Minute})
	if err != nil {
		t.Fatalf("SimulateFlood: %v", err)
	}
	if res.InflowVolume <= 0 || res.GlobalMaxDepth() <= 0 {
		t.Fatal("flood produced no water")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	exps := aquascale.Experiments()
	ids := aquascale.ExperimentIDs()
	if len(exps) == 0 || len(exps) != len(ids) {
		t.Fatalf("experiments: %d vs ids: %d", len(exps), len(ids))
	}
	for _, id := range ids {
		if exps[id] == nil {
			t.Fatalf("nil runner for %q", id)
		}
	}
}

func TestPublicWeather(t *testing.T) {
	series, err := aquascale.GenerateWeatherSeries(aquascale.WeatherSeriesConfig{
		Duration: 24 * time.Hour,
		MeanF:    15, // deep cold
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("GenerateWeatherSeries: %v", err)
	}
	if series.At(5*time.Hour) > aquascale.FreezeThresholdF+15 {
		t.Fatalf("pre-dawn temp = %v, expected deep cold", series.At(5*time.Hour))
	}
	model := aquascale.DefaultFreezeModel
	if model.PFreeze != 0.8 || model.PLeakGivenFreeze != 0.9 {
		t.Fatalf("default freeze model = %+v", model)
	}
	var rate aquascale.BreakRateModel
	if rate.Rate(10) <= rate.Rate(70) {
		t.Fatal("break rate not amplified by cold")
	}
}
