package aquascale_test

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/aquascale/aquascale"
)

// ExampleBuildEPANet shows the canonical evaluation network's shape.
func ExampleBuildEPANet() {
	net := aquascale.BuildEPANet()
	fmt.Println(net.Name)
	fmt.Println(len(net.Nodes), "nodes")
	fmt.Println(net.PipeCount(), "pipes")
	fmt.Println(net.PumpCount(), "pumps")
	// Output:
	// EPA-NET
	// 96 nodes
	// 118 pipes
	// 2 pumps
}

// ExampleHammingScore demonstrates the paper's evaluation metric: the
// Jaccard index of predicted and true leak sets.
func ExampleHammingScore() {
	truth := []int{0, 1, 0, 1, 0}
	pred := []int{0, 1, 1, 0, 0}
	fmt.Printf("%.3f\n", aquascale.HammingScore(pred, truth))
	// Output:
	// 0.333
}

// ExampleNewSolver runs one steady-state solve with a leak emitter.
func ExampleNewSolver() {
	net := aquascale.BuildTestNet()
	solver, err := aquascale.NewSolver(net, aquascale.SolverOptions{})
	if err != nil {
		panic(err)
	}
	j5, _ := net.NodeIndex("J5")
	res, err := solver.SolveSteady(0, []aquascale.Emitter{{Node: j5, Coeff: 1e-3}}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("leak discharges %.1f L/s\n", res.EmitterFlow[j5]*1000)
	// Output:
	// leak discharges 7.1 L/s
}

// ExampleFuseOdds shows Bayesian evidence aggregation (paper eqs. 5-6):
// two independent sources at 0.6 reinforce well above 0.6.
func ExampleFuseOdds() {
	fmt.Printf("%.3f\n", aquascale.FuseOdds(0.6, 0.6))
	// Output:
	// 0.692
}

// ExampleTweetConfidence shows eq. 3: confidence grows with report count.
func ExampleTweetConfidence() {
	for k := 1; k <= 3; k++ {
		fmt.Printf("k=%d: %.3f\n", k, aquascale.TweetConfidence(0.3, k))
	}
	// Output:
	// k=1: 0.700
	// k=2: 0.910
	// k=3: 0.973
}

// ExampleLeakGenerator draws a reproducible multi-leak scenario.
func ExampleLeakGenerator() {
	net := aquascale.BuildEPANet()
	gen, err := aquascale.NewLeakGenerator(net, aquascale.LeakGeneratorConfig{
		MinEvents: 2, MaxEvents: 2,
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		panic(err)
	}
	sc := gen.Next()
	fmt.Println(len(sc.Events), "concurrent leaks")
	// Output:
	// 2 concurrent leaks
}

// ExampleRunEPS runs a two-hour extended-period simulation.
func ExampleRunEPS() {
	net := aquascale.BuildTestNet()
	ts, err := aquascale.RunEPS(net, aquascale.EPSOptions{
		Duration: 2 * time.Hour,
		Step:     30 * time.Minute,
	}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(ts.Steps(), "snapshots")
	// Output:
	// 5 snapshots
}
