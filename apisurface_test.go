package aquascale

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// exportedSurface parses every non-test Go file of the facade package and
// returns its exported top-level identifiers, sorted. Methods are not
// collected: the facade re-exports internal types by alias, so its own
// surface is the set of names callers can reach as aquascale.X.
func exportedSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.IsExported() {
					names = append(names, "func "+d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							names = append(names, "type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, id := range s.Names {
							if id.IsExported() {
								kind := "var"
								if d.Tok == token.CONST {
									kind = "const"
								}
								names = append(names, kind+" "+id.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(names)
	return names
}

// TestExportedAPISurface is the facade's golden surface test: adding,
// renaming, or removing an exported identifier in package aquascale must
// be a deliberate act that updates this list. The diff output names
// exactly what changed, so an accidental export (or an accidental
// breaking removal) fails loudly in tier-1 instead of shipping.
func TestExportedAPISurface(t *testing.T) {
	got := exportedSurface(t)
	want := strings.Split(strings.TrimSpace(goldenSurface), "\n")
	sort.Strings(want)

	gotSet := make(map[string]bool, len(got))
	for _, n := range got {
		gotSet[n] = true
	}
	wantSet := make(map[string]bool, len(want))
	for _, n := range want {
		wantSet[n] = true
	}
	var added, removed []string
	for _, n := range got {
		if !wantSet[n] {
			added = append(added, n)
		}
	}
	for _, n := range want {
		if !gotSet[n] {
			removed = append(removed, n)
		}
	}
	if len(added) > 0 || len(removed) > 0 {
		t.Errorf("exported API surface changed:\n  new (add to goldenSurface if intended):\n    %s\n  missing (breaking removal if unintended):\n    %s",
			strings.Join(added, "\n    "), strings.Join(removed, "\n    "))
	}
}

// goldenSurface pins every exported identifier of the facade, one per
// line, "kind Name". Keep it sorted (the test sorts defensively).
const goldenSurface = `
const Closed
const ColdSnapWeather
const DistGenProtoVersion
const FlowSensor
const FreezeThresholdF
const Junction
const MildWeather
const Open
const Pipe
const PressureSensor
const Pump
const Reservoir
const ShardFormatVersion
const SolverBackendAuto
const SolverBackendDense
const SolverBackendSparse
const Tank
const TechniqueGB
const TechniqueHybridRSL
const TechniqueLinear
const TechniqueLogistic
const TechniqueRF
const TechniqueSVM
const Valve
func BuildCliques
func BuildEPANet
func BuildGrid
func BuildTestNet
func BuildWSSCSubnet
func ClassifierNames
func DEMFromNetwork
func DetectOnset
func DisableTelemetry
func EnableTelemetry
func ExperimentIDs
func ExperimentSpanName
func Experiments
func FuseOdds
func GenerateCorpusDistributed
func GenerateMarkovWeather
func GenerateWeatherSeries
func HammingScore
func HammingScoreProba
func LoadProfile
func NewCUSUM
func NewDEM
func NewFactory
func NewFleet
func NewFusionEngine
func NewLeakGenerator
func NewLogger
func NewMarkovWeatherSeries
func NewNetwork
func NewPlacer
func NewReportGenerator
func NewServer
func NewSolver
func NewSystem
func NewTextLogger
func NewWeatherSeries
func OpenCorpus
func ParseTechnique
func ReadINP
func ReadRuntimeHealth
func ReadSensors
func RunCorpusWorker
func RunEPS
func RunEPSContext
func RunQuality
func RunQualityContext
func SimulateFlood
func SimulateFloodContext
func Techniques
func TelemetryDefault
func TrainProfile
func TrainProfileContext
func TrainProfileFromCorpus
func TweetConfidence
func VerifyShard
func WriteINP
type BreakRateModel
type CUSUM
type CUSUMConfig
type Clique
type ColdScenario
type ConvergenceError
type CorpusOptions
type CorpusPlan
type CorpusReader
type CorpusResult
type CorpusSample
type CorpusTrainOptions
type CorpusWorkerOptions
type DEM
type DataSample
type Dataset
type DatasetConfig
type DistGenOptions
type EPSOptions
type Emitter
type EvalResult
type EvalSkippedScenario
type ExperimentFigure
type ExperimentRunner
type ExperimentScale
type Factory
type FactorySession
type FaultConfig
type Fleet
type FleetDistrict
type FleetStatus
type FloodConfig
type FloodResult
type FloodSource
type FreezeModel
type FusionConfig
type FusionEngine
type GridConfig
type HydraulicResult
type Injection
type LeakEvent
type LeakGenerator
type LeakGeneratorConfig
type LeakScenario
type Link
type LinkStatus
type LinkType
type LocalizeResult
type MarkovWeatherConfig
type MarkovWeatherSeries
type Network
type Node
type NodeType
type Observation
type ObserveOptions
type ObserveReport
type ObserveRequest
type Onset
type OnsetConfig
type Pattern
type Placer
type Prediction
type Profile
type ProfileConfig
type QualityOptions
type QualityResult
type Rand
type Report
type ReportGenerator
type RetryPolicy
type RetryStats
type RuntimeHealth
type ScenarioError
type ScheduledEmitter
type Sensor
type SensorKind
type SensorNoise
type ServeConfig
type ServeJob
type ServeStatus
type Server
type ShardHeader
type SkippedScenario
type SocialConfig
type Solver
type SolverBackend
type SolverOptions
type Sources
type System
type SystemConfig
type Technique
type TelemetryRegistry
type TelemetrySnapshot
type TimeSeries
type TraceRecorder
type TraceSnapshot
type WeatherRegime
type WeatherSeries
type WeatherSeriesConfig
var DefaultFreezeModel
var DefaultSensorNoise
var ErrCheckpointMismatch
var ErrCorpusMismatch
var ErrDraining
var ErrEvicted
var ErrNotConverged
var ErrQueueFull
var ErrShardChecksum
var ErrShardFormat
var ErrShardTruncated
var ErrShardVersion
`
