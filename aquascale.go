// Package aquascale is the public API of the AquaSCALE reproduction: a
// cyber-physical-human framework for localizing pipe failures in community
// water networks (Han et al., ICDCS 2017).
//
// The package re-exports the supported surface of the internal modules:
//
//   - Water-network modeling and the two evaluation networks (EPA-NET,
//     WSSC-SUBNET), plus an EPANET INP subset reader/writer.
//   - The EPANET++-equivalent hydraulic engine: steady-state Global
//     Gradient solves with pressure-dependent leak emitters, and
//     extended-period simulation with tank dynamics.
//   - IoT sensor modeling with k-medoids placement.
//   - Leak scenario generation, the Phase-I data factory and profile
//     training with plug-and-play classifiers, and Phase-II multi-source
//     fusion (weather evidence, tweet-derived cliques).
//   - The flood (cascading-impact) simulator.
//   - The experiment harness that regenerates every figure of the paper.
//   - The online localization service (Server) behind the aquad daemon.
//
// # Constructor conventions
//
// The API follows two constructor prefixes. Build* functions return
// canned artifacts with no knobs — the evaluation networks
// (BuildEPANet, BuildWSSCSubnet, BuildTestNet, BuildGrid) arrive ready
// to use and never fail. New* functions wire configured components
// (NewSolver, NewFactory, NewSystem, NewServer, …): they take a config
// struct, validate it, and return an error when the pieces don't fit.
//
// Every long-running entry point has a Context spelling —
// RunEPSContext, RunQualityContext, TrainProfileContext,
// SimulateFloodContext, Factory.GenerateContext, System.TrainContext,
// System.EvaluateParallelContext, Factory.GenerateCorpus,
// TrainProfileFromCorpus, GenerateCorpusDistributed — that observes
// cancellation at its loop boundaries (between solver steps, scenario
// dispatches, per-junction classifier fits): in-flight work finishes,
// partial state is never published, and the error is ctx.Err(). The
// context-free spellings (RunEPS, RunQuality, TrainProfile,
// SimulateFlood, …) are documented one-line shorthands for the Context
// form with context.Background().
//
// Quickstart:
//
//	net := aquascale.BuildEPANet()
//	baseline, _ := aquascale.RunEPS(net, aquascale.EPSOptions{}, nil)
//	placer, _ := aquascale.NewPlacer(net, baseline)
//	sensors, _ := placer.KMedoids(60, rng)
//	factory, _ := aquascale.NewFactory(net, sensors, aquascale.DatasetConfig{})
//	sys := aquascale.NewSystem(factory, net, aquascale.SystemConfig{})
//	_ = sys.Train(2000, aquascale.ProfileConfig{Technique: aquascale.TechniqueHybridRSL}, rng)
package aquascale

import (
	"context"
	"io"
	"log/slog"
	"math/rand"

	"github.com/aquascale/aquascale/internal/bench"
	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/detect"
	"github.com/aquascale/aquascale/internal/distgen"
	"github.com/aquascale/aquascale/internal/faults"
	"github.com/aquascale/aquascale/internal/flood"
	"github.com/aquascale/aquascale/internal/fusion"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/mlearn"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
	"github.com/aquascale/aquascale/internal/serve"
	"github.com/aquascale/aquascale/internal/social"
	"github.com/aquascale/aquascale/internal/stats"
	"github.com/aquascale/aquascale/internal/telemetry"
	"github.com/aquascale/aquascale/internal/weather"
)

// Water-network modeling.
type (
	// Network is a community water distribution network.
	Network = network.Network
	// Node is a junction, reservoir or tank.
	Node = network.Node
	// Link is a pipe, pump or valve.
	Link = network.Link
	// Pattern is a demand-multiplier sequence.
	Pattern = network.Pattern
	// NodeType distinguishes junctions, reservoirs and tanks.
	NodeType = network.NodeType
	// LinkType distinguishes pipes, pumps and valves.
	LinkType = network.LinkType
	// LinkStatus is open or closed.
	LinkStatus = network.LinkStatus
)

// Node and link kinds.
const (
	Junction  = network.Junction
	Reservoir = network.Reservoir
	Tank      = network.Tank
	Pipe      = network.Pipe
	Pump      = network.Pump
	Valve     = network.Valve
	Open      = network.Open
	Closed    = network.Closed
)

// NewNetwork creates an empty network.
func NewNetwork(name string) *Network { return network.New(name) }

// BuildEPANet builds the canonical EPA-NET evaluation network (96 nodes,
// 118 pipes, 2 pumps, 1 valve, 3 tanks, 2 sources).
func BuildEPANet() *Network { return network.BuildEPANet() }

// BuildWSSCSubnet builds the WSSC-SUBNET evaluation network (299 nodes,
// 316 pipes, 2 valves, 1 source).
func BuildWSSCSubnet() *Network { return network.BuildWSSCSubnet() }

// BuildTestNet builds a small 8-node network for experimentation.
func BuildTestNet() *Network { return network.BuildTestNet() }

// GridConfig parameterizes BuildGrid (rows × cols, looping, sources, seed).
type GridConfig = network.GridConfig

// BuildGrid builds a synthetic looped distribution grid of Rows×Cols
// junctions — the scaling testbed for the sparse solver backend (1k–10k+
// junctions are practical sizes).
func BuildGrid(cfg GridConfig) *Network { return network.BuildGrid(cfg) }

// ReadINP parses an EPANET INP subset.
func ReadINP(r io.Reader) (*Network, error) { return network.ReadINP(r) }

// WriteINP serializes a network in the INP subset.
func WriteINP(w io.Writer, n *Network) error { return network.WriteINP(w, n) }

// Hydraulic engine (EPANET++ equivalent).
type (
	// Solver computes steady-state hydraulics.
	Solver = hydraulic.Solver
	// SolverOptions configures convergence and the emitter exponent β.
	SolverOptions = hydraulic.Options
	// Emitter is a pressure-dependent leak discharge Q = EC·p^β.
	Emitter = hydraulic.Emitter
	// ScheduledEmitter is an emitter with an activation time.
	ScheduledEmitter = hydraulic.ScheduledEmitter
	// HydraulicResult is a steady-state snapshot.
	HydraulicResult = hydraulic.Result
	// EPSOptions configures extended-period simulation.
	EPSOptions = hydraulic.EPSOptions
	// TimeSeries is extended-period simulation output.
	TimeSeries = hydraulic.TimeSeries
	// SolverBackend selects the linear-algebra backend for the Newton
	// head system (auto, dense Cholesky, or reordered sparse LDLᵀ).
	SolverBackend = hydraulic.Backend
)

// Linear-algebra backends for SolverOptions.Backend. Auto picks sparse at
// DefaultSparseJunctions junctions and above; results agree across
// backends to ~1e-8 relative and are bit-identical run to run for a fixed
// backend.
const (
	SolverBackendAuto   = hydraulic.BackendAuto
	SolverBackendDense  = hydraulic.BackendDense
	SolverBackendSparse = hydraulic.BackendSparse
)

// NewSolver prepares a steady-state solver for a network.
func NewSolver(n *Network, opts SolverOptions) (*Solver, error) {
	return hydraulic.NewSolver(n, opts)
}

// RunEPS runs an extended-period simulation. It is shorthand for
// RunEPSContext with context.Background().
func RunEPS(n *Network, opts EPSOptions, emitters []ScheduledEmitter) (*TimeSeries, error) {
	return hydraulic.RunEPS(n, opts, emitters)
}

// RunEPSContext is RunEPS with cancellation, checked between hydraulic
// steps.
func RunEPSContext(ctx context.Context, n *Network, opts EPSOptions, emitters []ScheduledEmitter) (*TimeSeries, error) {
	return hydraulic.RunEPSContext(ctx, n, opts, emitters)
}

// Water-quality transport (contaminant propagation through the network).
type (
	// Injection is a constituent source at a node.
	Injection = hydraulic.Injection
	// QualityOptions configures water-quality transport.
	QualityOptions = hydraulic.QualityOptions
	// QualityResult holds constituent concentrations over time.
	QualityResult = hydraulic.QualityResult
)

// RunQuality advects a constituent along a completed hydraulic simulation
// (plug flow in pipes, complete mixing at junctions and tanks). It is
// shorthand for RunQualityContext with context.Background().
func RunQuality(n *Network, ts *TimeSeries, injections []Injection, opts QualityOptions) (*QualityResult, error) {
	return hydraulic.RunQuality(n, ts, injections, opts)
}

// RunQualityContext is RunQuality with cancellation, checked between
// hydraulic snapshots.
func RunQualityContext(ctx context.Context, n *Network, ts *TimeSeries, injections []Injection, opts QualityOptions) (*QualityResult, error) {
	return hydraulic.RunQualityContext(ctx, n, ts, injections, opts)
}

// ErrNotConverged is returned when the hydraulic solver fails to converge.
var ErrNotConverged = hydraulic.ErrNotConverged

// ConvergenceError is the concrete non-convergence error, carrying the
// iteration count, last residual and simulation time of the failing solve.
// It wraps ErrNotConverged (errors.Is compatible).
type ConvergenceError = hydraulic.ConvergenceError

// Robustness: solver retry-with-degradation and fault injection.
type (
	// RetryPolicy bounds solver retry-with-degradation on
	// non-convergence: each retry halves the Newton update fraction and
	// warm-restarts from the last attempt's iterate.
	RetryPolicy = hydraulic.RetryPolicy
	// RetryStats reports the retries and warm restarts one solve used.
	RetryStats = hydraulic.RetryStats
	// FaultConfig sets deterministic fault-injection rates: sensor
	// dropout, stuck-at and NaN readings, plus forced solver
	// non-convergence (see internal/faults).
	FaultConfig = faults.Config
)

// Leak events and scenarios.
type (
	// LeakEvent is one pipe failure e = (l, s, t).
	LeakEvent = leak.Event
	// LeakScenario is a set of concurrent failures.
	LeakScenario = leak.Scenario
	// LeakGeneratorConfig bounds random scenario generation.
	LeakGeneratorConfig = leak.GeneratorConfig
	// LeakGenerator draws random failure scenarios.
	LeakGenerator = leak.Generator
)

// NewLeakGenerator builds a scenario generator.
func NewLeakGenerator(n *Network, cfg LeakGeneratorConfig, rng Rand) (*LeakGenerator, error) {
	return leak.NewGenerator(n, cfg, rng)
}

// IoT sensing.
type (
	// Sensor is one IoT device (pressure transducer or flow meter).
	Sensor = sensor.Sensor
	// SensorKind distinguishes pressure sensors and flow meters.
	SensorKind = sensor.Kind
	// SensorNoise is the Gaussian measurement-noise model.
	SensorNoise = sensor.Noise
	// Placer selects sensor locations (k-medoids or random).
	Placer = sensor.Placer
)

// Sensor kinds.
const (
	PressureSensor = sensor.Pressure
	FlowSensor     = sensor.Flow
)

// DefaultSensorNoise matches commodity district-metering instruments.
var DefaultSensorNoise = sensor.DefaultNoise

// NewPlacer builds a sensor placer from a leak-free baseline simulation.
func NewPlacer(n *Network, baseline *TimeSeries) (*Placer, error) {
	return sensor.NewPlacer(n, baseline)
}

// ReadSensors samples every sensor from a hydraulic snapshot.
func ReadSensors(sensors []Sensor, res *HydraulicResult, noise SensorNoise, rng Rand) []float64 {
	return sensor.Read(sensors, res, noise, rng)
}

// Phase-I data factory and profile.
type (
	// DatasetConfig controls training-sample generation.
	DatasetConfig = dataset.Config
	// Dataset is a feature/label set.
	Dataset = dataset.Dataset
	// DataSample is one training or test example.
	DataSample = dataset.Sample
	// Factory generates datasets from leak scenarios.
	Factory = dataset.Factory
	// FactorySession reuses one hydraulic solver across many samples —
	// open one per goroutine for hot loops (Factory.FromScenario is the
	// construct-a-solver-per-call slow path).
	FactorySession = dataset.Session
	// Profile is the trained per-node classifier bank.
	Profile = core.Profile
	// ProfileConfig selects the Phase-I technique.
	ProfileConfig = core.ProfileConfig
	// Technique is a typed plug-and-play classifier selector (implements
	// encoding.TextMarshaler/Unmarshaler for JSON bodies and flag.TextVar).
	Technique = core.Technique
	// ScenarioError wraps a scenario's solve failure with the retry count
	// consumed (errors.Is-compatible with ErrNotConverged).
	ScenarioError = dataset.ScenarioError
	// SkippedScenario records one scenario dropped from a generated
	// dataset after retry exhaustion (see Dataset.Skipped).
	SkippedScenario = dataset.SkippedScenario
)

// NewFactory prepares a Phase-I data factory.
func NewFactory(n *Network, sensors []Sensor, cfg DatasetConfig) (*Factory, error) {
	return dataset.NewFactory(n, sensors, cfg)
}

// TrainProfile fits a profile model on a dataset (Algorithm 1). It is
// shorthand for TrainProfileContext with context.Background().
func TrainProfile(ds *Dataset, nodeCount int, cfg ProfileConfig) (*Profile, error) {
	return core.TrainProfile(ds, nodeCount, cfg)
}

// TrainProfileContext is TrainProfile with cancellation, checked
// between per-junction classifier dispatches.
func TrainProfileContext(ctx context.Context, ds *Dataset, nodeCount int, cfg ProfileConfig) (*Profile, error) {
	return core.TrainProfileContext(ctx, ds, nodeCount, cfg)
}

// LoadProfile reads a profile previously written by Profile.Save, so
// online deployments can skip Phase-I retraining.
func LoadProfile(r io.Reader) (*Profile, error) { return core.LoadProfile(r) }

// Profile techniques (the Fig-6 lineup plus the paper's chosen hybrid).
const (
	TechniqueLinear    = core.TechniqueLinear
	TechniqueLogistic  = core.TechniqueLogistic
	TechniqueGB        = core.TechniqueGB
	TechniqueRF        = core.TechniqueRF
	TechniqueSVM       = core.TechniqueSVM
	TechniqueHybridRSL = core.TechniqueHybridRSL
)

// Out-of-core scenario corpus (streamed shards on disk).
//
// Factory.GenerateCorpus writes a scenario corpus as checksummed binary
// shards; OpenCorpus streams it back with bounded resident memory; and
// System.TrainFromCorpus / TrainProfileFromCorpus train from the stream,
// bit-identical to the in-memory Generate+TrainOn path at the same seed.
// Both generation and training are restartable: generation resumes at
// shard granularity (-resume in aquatrain), training through an
// incremental per-junction checkpoint file.
type (
	// CorpusOptions configures corpus generation (shard size, resume).
	CorpusOptions = dataset.CorpusOptions
	// CorpusResult summarizes a corpus generation run.
	CorpusResult = dataset.CorpusResult
	// CorpusReader streams a corpus shard by shard.
	CorpusReader = dataset.CorpusReader
	// CorpusSample is one streamed sample; its buffers are only valid
	// during the Each callback.
	CorpusSample = dataset.CorpusSample
	// ShardHeader is the decoded metadata of one corpus shard.
	ShardHeader = dataset.ShardHeader
	// CorpusTrainOptions configures streaming training (label window,
	// checkpoint path).
	CorpusTrainOptions = core.CorpusTrainOptions
)

// ShardFormatVersion is the corpus shard wire-format version this build
// reads and writes. Readers reject other versions with ErrShardVersion.
const ShardFormatVersion = dataset.ShardFormatVersion

// Corpus error sentinels (errors.Is-compatible).
var (
	// ErrCorpusMismatch means a corpus or checkpoint belongs to a
	// different deployment, generation config or partition than this run.
	ErrCorpusMismatch = dataset.ErrCorpusMismatch
	// ErrShardFormat means a shard file is structurally invalid.
	ErrShardFormat = dataset.ErrShardFormat
	// ErrShardVersion means a shard was written by a different format
	// version.
	ErrShardVersion = dataset.ErrShardVersion
	// ErrShardTruncated means a shard file ends early (torn write).
	ErrShardTruncated = dataset.ErrShardTruncated
	// ErrShardChecksum means a shard's header or payload CRC failed.
	ErrShardChecksum = dataset.ErrShardChecksum
	// ErrCheckpointMismatch means a training checkpoint belongs to a
	// different corpus, profile seed or technique.
	ErrCheckpointMismatch = core.ErrCheckpointMismatch
)

// OpenCorpus opens a corpus directory written by Factory.GenerateCorpus,
// validating every shard header and the cross-shard partition.
func OpenCorpus(dir string) (*CorpusReader, error) { return dataset.OpenCorpus(dir) }

// VerifyShard checks one shard file end to end (header, CRCs, record
// structure) and returns its header.
func VerifyShard(path string) (ShardHeader, error) { return dataset.VerifyShard(path) }

// TrainProfileFromCorpus fits a profile model from a streamed corpus with
// bounded resident memory — bit-identical to TrainProfile on the
// equivalent in-memory dataset. With CorpusTrainOptions.CheckpointPath
// set, fitted classifiers are checkpointed incrementally and a rerun
// resumes past completed junctions.
func TrainProfileFromCorpus(ctx context.Context, r *CorpusReader, nodeCount int, cfg ProfileConfig, opt CorpusTrainOptions) (*Profile, error) {
	return core.TrainProfileFromCorpus(ctx, r, nodeCount, cfg, opt)
}

// Distributed corpus generation (coordinator/worker shard fan-out).
//
// GenerateCorpusDistributed partitions a planned corpus into shard
// ranges and leases them to worker processes over a small versioned
// HTTP protocol; every uploaded shard is verified against the plan,
// expired leases are reassigned (regeneration is byte-identical, so
// re-execution is idempotent), and the merged directory is validated
// to be exactly what single-process GenerateCorpus would have written
// at the same seed.
type (
	// DistGenOptions configures a distributed generation run (worker
	// count, lease TTL, range grain, resume, worker launcher).
	DistGenOptions = distgen.Options
	// CorpusWorkerOptions configures one generation worker.
	CorpusWorkerOptions = distgen.WorkerOptions
	// CorpusPlan is the deterministic shard partition of one corpus,
	// shared by coordinator and workers.
	CorpusPlan = dataset.CorpusPlan
)

// DistGenProtoVersion is the coordinator/worker wire-protocol version.
const DistGenProtoVersion = distgen.ProtoVersion

// GenerateCorpusDistributed runs a coordinated multi-process corpus
// generation into dir — byte-identical to f.GenerateCorpus at the same
// seed and shard size, for any worker count and any lease reassignment
// history.
func GenerateCorpusDistributed(ctx context.Context, f *Factory, count int, seed int64, dir string, opt DistGenOptions) (*CorpusResult, error) {
	return distgen.Coordinate(ctx, f, count, seed, dir, opt)
}

// RunCorpusWorker runs one generation worker against a coordinator
// until the corpus completes — the library form of `aquatrain -worker`.
func RunCorpusWorker(ctx context.Context, coordinatorURL string, opt CorpusWorkerOptions) error {
	return distgen.RunWorker(ctx, coordinatorURL, opt)
}

// ParseTechnique validates a technique name ("" means TechniqueHybridRSL);
// unknown names error with the valid list.
func ParseTechnique(s string) (Technique, error) { return core.ParseTechnique(s) }

// Techniques lists the registered techniques in sorted order.
func Techniques() []Technique { return core.Techniques() }

// ClassifierNames lists the registered plug-and-play techniques by name —
// always consistent with Techniques (both read the mlearn registry).
func ClassifierNames() []string { return mlearn.Names() }

// HammingScore is the paper's evaluation metric (Jaccard of leak sets) —
// the one canonical implementation every layer scores with.
func HammingScore(pred, truth []int) float64 { return mlearn.HammingScore(pred, truth) }

// HammingScoreProba is HammingScore with the prediction given as
// probabilities, thresholded at 0.5.
func HammingScoreProba(proba []float64, truth []int) float64 {
	return mlearn.HammingScoreProba(proba, truth)
}

// The AquaSCALE system (two-phase workflow).
type (
	// System is a trained AquaSCALE instance.
	System = core.System
	// SystemConfig wires a System.
	SystemConfig = core.SystemConfig
	// Sources toggles the Phase-II information sources.
	Sources = core.Sources
	// Observation is one live Phase-II input.
	Observation = core.Observation
	// ObserveOptions controls observation simulation.
	ObserveOptions = core.ObserveOptions
	// ColdScenario is a freeze-driven multi-failure scenario.
	ColdScenario = core.ColdScenario
	// EvalResult summarizes an evaluation run.
	EvalResult = core.EvalResult
	// EvalSkippedScenario records one evaluation scenario dropped after
	// retry exhaustion (see EvalResult.Skipped).
	EvalSkippedScenario = core.SkippedScenario
)

// NewSystem builds an untrained AquaSCALE system.
func NewSystem(factory *Factory, n *Network, cfg SystemConfig) *System {
	return core.NewSystem(factory, n, cfg)
}

// Phase-II fusion.
type (
	// FusionConfig parameterizes Phase-II inference.
	FusionConfig = fusion.Config
	// FusionEngine runs Phase-II inference.
	FusionEngine = fusion.Engine
	// Prediction is the per-node leak belief.
	Prediction = fusion.Prediction
)

// NewFusionEngine creates a Phase-II fusion engine.
func NewFusionEngine(cfg FusionConfig) *FusionEngine { return fusion.NewEngine(cfg) }

// Weather modeling.
type (
	// WeatherSeries is a sampled ambient-temperature record.
	WeatherSeries = weather.Series
	// WeatherSeriesConfig configures temperature synthesis.
	WeatherSeriesConfig = weather.SeriesConfig
	// FreezeModel holds p(freeze) and p(leak|freeze).
	FreezeModel = weather.FreezeModel
	// BreakRateModel is the Fig-3 temperature/break-rate relationship.
	BreakRateModel = weather.BreakRateModel
)

// FreezeThresholdF is the paper's freezing-risk temperature (°F).
const FreezeThresholdF = weather.FreezeThresholdF

// DefaultFreezeModel uses the paper's 0.8/0.9 parameters.
var DefaultFreezeModel = weather.DefaultFreezeModel

// NewWeatherSeries synthesizes an ambient temperature series from a
// validated config — the convention-conforming name for
// GenerateWeatherSeries.
func NewWeatherSeries(cfg WeatherSeriesConfig, rng Rand) (*WeatherSeries, error) {
	return weather.GenerateSeries(cfg, rng)
}

// GenerateWeatherSeries synthesizes an ambient temperature series.
//
// Deprecated: use NewWeatherSeries. The function takes a config and can
// fail, so it follows the New* constructor convention; this alias is
// kept so existing callers don't break.
func GenerateWeatherSeries(cfg WeatherSeriesConfig, rng Rand) (*WeatherSeries, error) {
	return NewWeatherSeries(cfg, rng)
}

// Markov regime-switching weather (the paper's stated future work).
type (
	// WeatherRegime is a hidden weather state (Mild or ColdSnap).
	WeatherRegime = weather.Regime
	// MarkovWeatherConfig parameterizes regime-switching weather.
	MarkovWeatherConfig = weather.MarkovConfig
	// MarkovWeatherSeries is a temperature series with its regime path.
	MarkovWeatherSeries = weather.MarkovSeries
)

// Weather regimes.
const (
	MildWeather     = weather.Mild
	ColdSnapWeather = weather.ColdSnap
)

// NewMarkovWeatherSeries synthesizes a regime-switching temperature
// series with persistent cold snaps — the convention-conforming name
// for GenerateMarkovWeather.
func NewMarkovWeatherSeries(cfg MarkovWeatherConfig, rng Rand) (*MarkovWeatherSeries, error) {
	return weather.GenerateMarkovSeries(cfg, rng)
}

// GenerateMarkovWeather synthesizes a regime-switching temperature series
// with persistent cold snaps.
//
// Deprecated: use NewMarkovWeatherSeries. The function takes a config
// and can fail, so it follows the New* constructor convention; this
// alias is kept so existing callers don't break.
func GenerateMarkovWeather(cfg MarkovWeatherConfig, rng Rand) (*MarkovWeatherSeries, error) {
	return NewMarkovWeatherSeries(cfg, rng)
}

// Human input (social sensing).
type (
	// Report is one leak-related social media post.
	Report = social.Report
	// SocialConfig parameterizes the report stream (λ, p_e, scatter).
	SocialConfig = social.Config
	// Clique is a tweet-derived subzone c = {v : |l_c − l_v| < γ}.
	Clique = social.Clique
	// ReportGenerator draws synthetic report streams.
	ReportGenerator = social.Generator
)

// NewReportGenerator builds a tweet-stream generator for a network.
func NewReportGenerator(n *Network, cfg SocialConfig, rng Rand) (*ReportGenerator, error) {
	return social.NewGenerator(n, cfg, rng)
}

// BuildCliques groups reports into node cliques with eq.-3 confidence.
func BuildCliques(n *Network, reports []Report, gammaM, pe float64) []Clique {
	return social.BuildCliques(n, reports, gammaM, pe)
}

// TweetConfidence is eq. 3: p_t = 1 − p_e^k.
func TweetConfidence(pe float64, k int) float64 { return social.Confidence(pe, k) }

// FuseOdds combines probability assessments by Bayesian odds aggregation
// (eqs. 5–6).
func FuseOdds(probs ...float64) float64 { return stats.FuseOdds(probs...) }

// Flood modeling (cascading impact).
type (
	// DEM is a raster digital elevation model.
	DEM = flood.DEM
	// FloodSource is a point inflow (a surfacing leak).
	FloodSource = flood.Source
	// FloodConfig configures the shallow-water run.
	FloodConfig = flood.SimConfig
	// FloodResult holds the inundation output.
	FloodResult = flood.Result
)

// NewDEM interpolates a DEM from node elevations — the
// convention-conforming name for DEMFromNetwork.
func NewDEM(n *Network, cellSize float64, marginCells int) (*DEM, error) {
	return flood.FromNetwork(n, cellSize, marginCells)
}

// DEMFromNetwork interpolates a DEM from node elevations.
//
// Deprecated: use NewDEM. The function validates its inputs and can
// fail, so it follows the New* constructor convention; this alias is
// kept so existing callers don't break.
func DEMFromNetwork(n *Network, cellSize float64, marginCells int) (*DEM, error) {
	return NewDEM(n, cellSize, marginCells)
}

// SimulateFlood runs the local-inertial shallow-water model. It is
// shorthand for SimulateFloodContext with context.Background().
func SimulateFlood(dem *DEM, sources []FloodSource, cfg FloodConfig) (*FloodResult, error) {
	return flood.Simulate(dem, sources, cfg)
}

// SimulateFloodContext is SimulateFlood with cancellation, checked
// between adaptive time steps.
func SimulateFloodContext(ctx context.Context, dem *DEM, sources []FloodSource, cfg FloodConfig) (*FloodResult, error) {
	return flood.SimulateContext(ctx, dem, sources, cfg)
}

// Leak-onset detection (estimating e.t, which the paper assumes known).
type (
	// CUSUMConfig tunes one sensor's change detector.
	CUSUMConfig = detect.CUSUMConfig
	// CUSUM is a two-sided change detector with an adaptive baseline.
	CUSUM = detect.CUSUM
	// OnsetConfig tunes network-level onset detection.
	OnsetConfig = detect.OnsetConfig
	// Onset is a detected network change.
	Onset = detect.Onset
)

// NewCUSUM creates a per-sensor change detector.
func NewCUSUM(cfg CUSUMConfig) *CUSUM { return detect.NewCUSUM(cfg) }

// DetectOnset scans residual readings (readings[slot][sensor], observed
// minus expected) for the first slot at which the alarm quorum is reached.
func DetectOnset(readings [][]float64, cfg OnsetConfig) (Onset, bool, error) {
	return detect.DetectOnset(readings, cfg)
}

// Experiment harness.
type (
	// ExperimentScale sets experiment sizes (CI-sized vs paper-sized).
	ExperimentScale = bench.Scale
	// ExperimentFigure is a reproduced paper figure.
	ExperimentFigure = bench.Figure
	// ExperimentRunner generates one figure at a given scale.
	ExperimentRunner = bench.Runner
)

// Experiments maps experiment ids (fig2 … fig11, ablations) to runners.
// The returned map is the harness registry itself, built once and shared
// by every caller — treat it as read-only.
func Experiments() map[string]ExperimentRunner { return bench.Experiments() }

// ExperimentIDs lists experiment ids in presentation order.
func ExperimentIDs() []string { return bench.ExperimentIDs() }

// ExperimentSpanName is the telemetry span an experiment runs under —
// read it back (TelemetryDefault().SpanStats) to report the same timing
// the metrics exporters serialize.
func ExperimentSpanName(id string) string { return bench.FigureSpanName(id) }

// Online localization service (the aquad daemon's engine).
type (
	// Server is the long-running localization service: a bounded worker
	// pool over one shared System, with queue backpressure, request
	// timeouts, hot profile reload and graceful drain.
	Server = serve.Server
	// ServeConfig parameterizes a Server (workers, queue bound, timeout).
	ServeConfig = serve.Config
	// ObserveRequest is one live observation submitted to a Server.
	ObserveRequest = serve.ObserveRequest
	// ObserveReport is one geotagged human report in an ObserveRequest.
	ObserveReport = serve.ReportIn
	// LocalizeResult is one completed online localization.
	LocalizeResult = serve.Result
	// ServeStatus is the service health snapshot (GET /v1/status).
	ServeStatus = serve.Status
	// ServeJob is a queued/running/finished localization request.
	ServeJob = serve.Job
)

// Serving backpressure and shutdown sentinels.
var (
	// ErrQueueFull means the job queue is at capacity (HTTP 429).
	ErrQueueFull = serve.ErrQueueFull
	// ErrDraining means the server is shutting down (HTTP 503).
	ErrDraining = serve.ErrDraining
	// ErrEvicted means a job's finished result aged out of the bounded
	// result window (HTTP 410 Gone) — distinct from an unknown id (404).
	ErrEvicted = serve.ErrEvicted
)

// NewServer starts a localization service over a trained system.
func NewServer(sys *System, cfg ServeConfig) (*Server, error) { return serve.New(sys, cfg) }

// Fleet serving (many districts in one aquad).
type (
	// Fleet hosts many districts' localization services in one process:
	// per-district Servers carved from one shared worker budget, routed
	// by district id, draining and hot-swapping independently.
	Fleet = serve.Fleet
	// FleetDistrict names one trained System served under a district id.
	FleetDistrict = serve.District
	// FleetStatus is the fleet-wide health snapshot (GET /v1/status).
	FleetStatus = serve.FleetStatus
)

// NewFleet starts one localization service per district over a shared
// worker budget (ServeConfig.Workers is the fleet-wide total).
func NewFleet(districts []FleetDistrict, cfg ServeConfig) (*Fleet, error) {
	return serve.NewFleet(districts, cfg)
}

// Telemetry (metrics, spans, profiling hooks).
//
// The layer is off by default and free when off: instrumented components
// bind no-op handles. Call EnableTelemetry before constructing solvers,
// factories and systems; enabling it never changes results at a fixed
// seed.
type (
	// TelemetryRegistry holds named counters, gauges, histograms and spans,
	// with Prometheus/JSON exporters and an HTTP observability endpoint.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time JSON-serializable metrics copy.
	TelemetrySnapshot = telemetry.Snapshot
)

// EnableTelemetry installs a fresh global telemetry registry.
func EnableTelemetry() *TelemetryRegistry { return telemetry.Enable() }

// DisableTelemetry removes the global telemetry registry.
func DisableTelemetry() { telemetry.Disable() }

// TelemetryDefault returns the global registry, or nil when disabled
// (every method on the nil registry is a safe no-op).
func TelemetryDefault() *TelemetryRegistry { return telemetry.Default() }

// Per-request tracing and structured logging.
type (
	// TraceSnapshot is one completed request trace: the stage timeline a
	// Server's flight recorder retains and GET /v1/trace/{job} replays.
	TraceSnapshot = telemetry.TraceSnapshot
	// TraceRecorder is the bounded lock-free flight recorder behind
	// GET /debug/requests.
	TraceRecorder = telemetry.Recorder
	// RuntimeHealth is one poll of the process-health gauges
	// (goroutines, heap in-use, cumulative GC pause).
	RuntimeHealth = telemetry.RuntimeHealth
)

// NewLogger builds the project's structured logger: log/slog with a JSON
// handler, one object per line, trace-id-correlated via ServeConfig.Logger.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return telemetry.NewLogger(w, level)
}

// NewTextLogger is NewLogger with the human-readable key=value handler.
func NewTextLogger(w io.Writer, level slog.Level) *slog.Logger {
	return telemetry.NewTextLogger(w, level)
}

// ReadRuntimeHealth samples the Go runtime's health gauges once.
func ReadRuntimeHealth() RuntimeHealth { return telemetry.ReadRuntimeHealth() }

// Rand is the random source used across the API.
type Rand = *rand.Rand
